//! Cross-crate proof that the solver's dual certificates actually certify:
//! every emission path (cold dense, cold sparse, warm basis restore,
//! resident batch sweep, unconstrained) produces a [`DualCertificate`] that
//! `itne_certcheck` validates in exact arithmetic, and corrupted or
//! over-tight claims are rejected.

use itne_certcheck::{verify_bound, verify_infeasibility, RowCmp, RowRef};
use itne_milp::{BatchSolver, Cmp, Engine, Model, Sense, Solution, SolveOptions};

fn opts(engine: Engine) -> SolveOptions {
    SolveOptions {
        engine,
        ..Default::default()
    }
}

fn rows_of(model: &Model) -> Vec<RowRef<'_>> {
    (0..model.num_constraints())
        .map(|r| RowRef {
            terms: model.row_terms(r),
            cmp: match model.row_cmp(r) {
                Cmp::Le => RowCmp::Le,
                Cmp::Ge => RowCmp::Ge,
                Cmp::Eq => RowCmp::Eq,
            },
            rhs: model.row_rhs(r),
        })
        .collect()
}

fn bounds_of(model: &Model) -> Vec<(f64, f64)> {
    (0..model.num_vars()).map(|j| model.bounds_at(j)).collect()
}

/// Checks `reported` as a directional bound on `model`'s optimum using the
/// certificate attached to `sol`.
fn certify(model: &Model, sol: &Solution, reported: f64) -> bool {
    let cert = sol.certificate().expect("certificate expected");
    let maximize = model.objective_sense() == Some(Sense::Maximize);
    verify_bound(
        model.num_vars(),
        &rows_of(model),
        &bounds_of(model),
        model.objective_terms(),
        model.objective_constant(),
        maximize,
        &cert.row_duals,
        reported,
    )
    .is_valid()
}

/// The float optimum padded outward by a slack dominating simplex round-off,
/// in the direction that makes the claim *loose* (checkable).
fn padded(model: &Model, sol: &Solution) -> f64 {
    match model.objective_sense() {
        Some(Sense::Maximize) => sol.objective + 1e-6,
        _ => sol.objective - 1e-6,
    }
}

/// The docs' textbook LP: max 3x + 2y s.t. x+y ≤ 6, 2x+y ≤ 9, 0 ≤ x,y ≤ 10.
/// Optimum 15 at (3, 3); exact duals (−1, −1) in minimize orientation.
fn textbook() -> Model {
    let mut m = Model::new();
    let x = m.add_var(0.0, 10.0);
    let y = m.add_var(0.0, 10.0);
    m.add_constraint(x + y, Cmp::Le, 6.0);
    m.add_constraint(2.0 * x + y, Cmp::Le, 9.0);
    m.set_objective(Sense::Maximize, 3.0 * x + 2.0 * y);
    m
}

#[test]
fn both_engines_emit_checkable_certificates() {
    for engine in [Engine::Lu, Engine::Eta, Engine::Dense] {
        let m = textbook();
        let sol = m.solve_with(&opts(engine)).unwrap();
        assert!(sol.is_certified(), "{engine:?} should certify");
        assert!((sol.objective - 15.0).abs() < 1e-6);
        assert!(certify(&m, &sol, padded(&m, &sol)), "{engine:?} maximize");
        // A claim tighter than the optimum must be rejected.
        assert!(!certify(&m, &sol, sol.objective - 0.1), "{engine:?} cheat");

        // Minimize: lower bounds point the other way.
        let mut mn = Model::new();
        let x = mn.add_var(0.0, 10.0);
        let y = mn.add_var(0.0, 10.0);
        mn.add_constraint(x + y, Cmp::Ge, 2.0);
        mn.add_constraint(2.0 * x + y, Cmp::Le, 9.0);
        mn.set_objective(Sense::Minimize, 3.0 * x + 2.0 * y);
        let sol = mn.solve_with(&opts(engine)).unwrap();
        assert!(sol.is_certified());
        assert!(certify(&mn, &sol, padded(&mn, &sol)), "{engine:?} minimize");
        assert!(!certify(&mn, &sol, sol.objective + 0.1));
    }
}

#[test]
fn corrupted_certificates_are_rejected() {
    let m = textbook();
    let sol = m.solve_with(&opts(Engine::Lu)).unwrap();
    let reported = padded(&m, &sol);
    assert!(certify(&m, &sol, reported));

    let cert = sol.certificate().unwrap();
    // Halving one multiplier weakens the proven bound past the claim.
    let mut tampered = cert.row_duals.clone();
    tampered[0] *= 0.5;
    assert!(!verify_bound(
        m.num_vars(),
        &rows_of(&m),
        &bounds_of(&m),
        m.objective_terms(),
        m.objective_constant(),
        true,
        &tampered,
        reported,
    )
    .is_valid());
    // Wrong length is malformed, not silently padded.
    assert!(!verify_bound(
        m.num_vars(),
        &rows_of(&m),
        &bounds_of(&m),
        m.objective_terms(),
        m.objective_constant(),
        true,
        &cert.row_duals[..1],
        reported,
    )
    .is_valid());
}

#[test]
fn warm_started_solves_carry_certificates() {
    for engine in [Engine::Lu, Engine::Eta, Engine::Dense] {
        let o = opts(engine);
        let m = textbook();
        let (cold, basis) = m.solve_with_basis(&o, None).unwrap();
        assert!(cold.is_certified());
        let basis = basis.expect("cold solve yields a snapshot");

        // New objective over the same skeleton, warm-started from the basis.
        let mut m2 = Model::new();
        let x = m2.add_var(0.0, 10.0);
        let y = m2.add_var(0.0, 10.0);
        m2.add_constraint(x + y, Cmp::Le, 6.0);
        m2.add_constraint(2.0 * x + y, Cmp::Le, 9.0);
        m2.set_objective(Sense::Maximize, 1.0 * x + 4.0 * y);
        let (warm, _) = m2.solve_with_basis(&o, Some(&basis)).unwrap();
        assert!(warm.is_certified(), "{engine:?} warm solve should certify");
        assert!(certify(&m2, &warm, padded(&m2, &warm)));
        assert!(!certify(&m2, &warm, warm.objective - 0.1));
    }
}

#[test]
fn batch_resident_sweep_certificates_survive_warm_starts() {
    for engine in [Engine::Lu, Engine::Eta, Engine::Dense] {
        let o = opts(engine);
        let mut m = Model::new();
        let x = m.add_var(0.0, 10.0);
        let y = m.add_var(0.0, 10.0);
        m.add_constraint(x + y, Cmp::Le, 6.0);
        m.add_constraint(2.0 * x + y, Cmp::Le, 9.0);

        let mut batch = BatchSolver::new(&mut m);
        let objectives = [
            (Sense::Maximize, 3.0, 2.0),
            (Sense::Minimize, 1.0, 1.0),
            (Sense::Maximize, 0.5, 4.0),
            (Sense::Minimize, -2.0, 3.0),
        ];
        for &(sense, cx, cy) in &objectives {
            let sol = batch.solve(sense, cx * x + cy * y, &o).unwrap();
            assert!(sol.is_certified(), "{engine:?} sweep solve");
            let reported = padded(batch.model(), &sol);
            assert!(certify(batch.model(), &sol, reported), "{engine:?} sweep");
        }
        let stats = batch.stats();
        assert!(
            stats.warm_hits >= 1,
            "{engine:?}: sweep should warm-start ({stats:?})"
        );
    }
}

#[test]
fn emission_can_be_disabled() {
    let o = SolveOptions {
        emit_certificates: false,
        ..Default::default()
    };
    let m = textbook();
    let sol = m.solve_with(&o).unwrap();
    assert!(sol.certificate().is_none());
    assert!(!sol.is_certified());
}

#[test]
fn branch_and_bound_solutions_are_not_certified() {
    let mut m = Model::new();
    let a = m.add_binary();
    let b = m.add_binary();
    m.add_constraint(3.0 * a + 4.0 * b, Cmp::Le, 6.0);
    m.set_objective(Sense::Maximize, 10.0 * a + 13.0 * b);
    let sol = m.solve().unwrap();
    assert!(sol.certificate().is_none());
    assert!(!sol.is_certified());
}

#[test]
fn unconstrained_solves_are_certified() {
    let mut m = Model::new();
    let x = m.add_var(-1.0, 2.0);
    let y = m.add_var(0.0, 3.0);
    m.set_objective(Sense::Maximize, 2.0 * x + 1.0 * y);
    let sol = m.solve().unwrap();
    assert!(sol.is_certified());
    assert!((sol.objective - 7.0).abs() < 1e-12);
    assert!(certify(&m, &sol, padded(&m, &sol)));
    assert!(!certify(&m, &sol, sol.objective - 0.5));
}

#[test]
fn infeasibility_certificate_validates_exactly() {
    // x ≥ 3 and x ≤ 2 cannot both hold.
    let mut m = Model::new();
    let x = m.add_var(0.0, 10.0);
    m.add_constraint(1.0 * x, Cmp::Ge, 3.0);
    m.add_constraint(1.0 * x, Cmp::Le, 2.0);
    assert!(m.solve().is_err());
    let duals = m
        .infeasibility_certificate(&SolveOptions::default())
        .expect("infeasible model yields a witness");
    assert!(verify_infeasibility(m.num_vars(), &rows_of(&m), &bounds_of(&m), &duals).is_valid());

    // A feasible model yields no witness.
    let mut f = Model::new();
    let x = f.add_var(0.0, 10.0);
    f.add_constraint(1.0 * x, Cmp::Le, 5.0);
    assert!(f
        .infeasibility_certificate(&SolveOptions::default())
        .is_none());

    // Bound-driven infeasibility needs row terms: x ≥ 5 with hi = 4.
    let mut b = Model::new();
    let x = b.add_var(0.0, 4.0);
    b.add_constraint(1.0 * x, Cmp::Ge, 5.0);
    let duals = b
        .infeasibility_certificate(&SolveOptions::default())
        .expect("bound-vs-row conflict yields a witness");
    assert!(verify_infeasibility(b.num_vars(), &rows_of(&b), &bounds_of(&b), &duals).is_valid());
}
