//! Property-based cross-checks of the LP/MILP solver.
//!
//! * Any solution reported `Optimal` must be feasible and must dominate every
//!   feasible point we can find by sampling.
//! * Branch-and-bound must agree with brute-force enumeration over all binary
//!   assignments (each completed by an LP on the continuous remainder).
//! * Warm-started batched sweeps ([`BatchSolver`]) and basis snapshot/restore
//!   chains ([`Model::solve_with_basis`]) must agree with independent cold
//!   solves on every objective of randomly generated *feasible* skeletons —
//!   including when a restore is rejected and falls back to a cold solve.

use itne_milp::{BatchSolver, Cmp, Engine, LinExpr, Model, Sense, SolveError, SolveOptions};
use proptest::prelude::*;

fn engine_opts(engine: Engine) -> SolveOptions {
    SolveOptions {
        engine,
        ..Default::default()
    }
}

#[derive(Debug, Clone)]
struct RandomLp {
    n: usize,
    bounds: Vec<(f64, f64)>,
    rows: Vec<(Vec<f64>, Cmp, f64)>,
    obj: Vec<f64>,
    sense: Sense,
}

fn cmp_strategy() -> impl Strategy<Value = Cmp> {
    prop_oneof![Just(Cmp::Le), Just(Cmp::Ge), Just(Cmp::Eq)]
}

fn coef() -> impl Strategy<Value = f64> {
    // Small integers keep instances well-scaled and make failures readable.
    (-4i32..=4).prop_map(|v| v as f64)
}

fn random_lp() -> impl Strategy<Value = RandomLp> {
    (
        2usize..=5,
        1usize..=4,
        prop_oneof![Just(Sense::Minimize), Just(Sense::Maximize)],
    )
        .prop_flat_map(|(n, m, sense)| {
            let bounds = proptest::collection::vec((-3i32..=0, 0i32..=3), n)
                .prop_map(|bs| bs.into_iter().map(|(l, h)| (l as f64, h as f64)).collect());
            let rows = proptest::collection::vec(
                (
                    proptest::collection::vec(coef(), n),
                    cmp_strategy(),
                    -5i32..=5,
                ),
                m,
            )
            .prop_map(|rs| {
                rs.into_iter()
                    .map(|(cs, cmp, rhs)| (cs, cmp, rhs as f64))
                    .collect::<Vec<_>>()
            });
            let obj = proptest::collection::vec(coef(), n);
            (Just(n), bounds, rows, obj, Just(sense))
        })
        .prop_map(|(n, bounds, rows, obj, sense)| RandomLp {
            n,
            bounds,
            rows,
            obj,
            sense,
        })
}

fn build(lp: &RandomLp) -> (Model, Vec<itne_milp::VarId>) {
    assert_eq!(lp.bounds.len(), lp.n, "strategy produced inconsistent LP");
    let mut m = Model::new();
    let vars: Vec<_> = lp.bounds.iter().map(|&(l, h)| m.add_var(l, h)).collect();
    for (cs, cmp, rhs) in &lp.rows {
        let e = LinExpr::from_terms(vars.iter().copied().zip(cs.iter().copied()), 0.0);
        m.add_constraint(e, *cmp, *rhs);
    }
    let obj = LinExpr::from_terms(vars.iter().copied().zip(lp.obj.iter().copied()), 0.0);
    m.set_objective(lp.sense, obj);
    (m, vars)
}

/// Deterministic low-discrepancy point in the variable box.
fn sample_point(lp: &RandomLp, k: usize) -> Vec<f64> {
    lp.bounds
        .iter()
        .enumerate()
        .map(|(j, &(l, h))| {
            let t = ((k * 2654435761 + j * 40503) % 1000) as f64 / 999.0;
            l + t * (h - l)
        })
        .collect()
}

fn feasible(lp: &RandomLp, x: &[f64]) -> bool {
    lp.rows.iter().all(|(cs, cmp, rhs)| {
        let lhs: f64 = cs.iter().zip(x).map(|(c, v)| c * v).sum();
        match cmp {
            Cmp::Le => lhs <= rhs + 1e-9,
            Cmp::Ge => lhs >= rhs - 1e-9,
            Cmp::Eq => (lhs - rhs).abs() <= 1e-9,
        }
    })
}

fn objective(lp: &RandomLp, x: &[f64]) -> f64 {
    lp.obj.iter().zip(x).map(|(c, v)| c * v).sum()
}

/// A random LP skeleton that is feasible *by construction* (every row's rhs
/// is offset from the activity of a known in-box point), plus a batch of
/// objectives to sweep over it — the certifier's query shape.
#[derive(Debug, Clone)]
struct FeasibleSweep {
    bounds: Vec<(f64, f64)>,
    /// The known feasible point, used only to build `rows`.
    point: Vec<f64>,
    rows: Vec<(Vec<f64>, Cmp, f64)>,
    objectives: Vec<(Sense, Vec<f64>)>,
    /// Append a scaled copy of row 0's hyperplane pinned at the witness
    /// point, as an equality. Linearly dependent rows routinely strand a
    /// frozen artificial in the final basis, which makes basis snapshots
    /// unavailable (`solve_with_basis` returns no snapshot) and forces
    /// restore chains through their cold-fallback path.
    duplicate_row: bool,
}

fn sense_strategy() -> impl Strategy<Value = Sense> {
    prop_oneof![Just(Sense::Minimize), Just(Sense::Maximize)]
}

fn feasible_sweep() -> impl Strategy<Value = FeasibleSweep> {
    (2usize..=5, 1usize..=4, 2usize..=6, any::<bool>())
        .prop_flat_map(|(n, m, k, duplicate_row)| {
            let bounds = proptest::collection::vec((-3i32..=0, 0i32..=3), n).prop_map(|bs| {
                bs.into_iter()
                    .map(|(l, h)| (l as f64, h as f64))
                    .collect::<Vec<_>>()
            });
            // Interior-ish point, parameterized on a coarse grid.
            let point_t = proptest::collection::vec(0u32..=8, n);
            let rows = proptest::collection::vec(
                (
                    proptest::collection::vec(coef(), n),
                    cmp_strategy(),
                    0i32..=2,
                ),
                m,
            );
            let objectives = proptest::collection::vec(
                (sense_strategy(), proptest::collection::vec(coef(), n)),
                k,
            );
            (bounds, point_t, rows, objectives, Just(duplicate_row))
        })
        .prop_map(|(bounds, point_t, raw_rows, objectives, duplicate_row)| {
            let point: Vec<f64> = bounds
                .iter()
                .zip(&point_t)
                .map(|(&(l, h), &t)| l + (t as f64 / 8.0) * (h - l))
                .collect();
            let rows = raw_rows
                .into_iter()
                .map(|(cs, cmp, margin)| {
                    let activity: f64 = cs.iter().zip(&point).map(|(c, x)| c * x).sum();
                    let rhs = match cmp {
                        Cmp::Le => activity + margin as f64,
                        Cmp::Ge => activity - margin as f64,
                        Cmp::Eq => activity,
                    };
                    (cs, cmp, rhs)
                })
                .collect();
            FeasibleSweep {
                bounds,
                point,
                rows,
                objectives,
                duplicate_row,
            }
        })
}

fn build_sweep_model(s: &FeasibleSweep) -> (Model, Vec<itne_milp::VarId>) {
    let mut m = Model::new();
    let vars: Vec<_> = s.bounds.iter().map(|&(l, h)| m.add_var(l, h)).collect();
    for (cs, cmp, rhs) in &s.rows {
        let e = LinExpr::from_terms(vars.iter().copied().zip(cs.iter().copied()), 0.0);
        m.add_constraint(e, *cmp, *rhs);
    }
    if s.duplicate_row {
        let (cs, _, _) = &s.rows[0];
        let e = LinExpr::from_terms(vars.iter().copied().zip(cs.iter().map(|&c| 2.0 * c)), 0.0);
        // Pin the duplicated hyperplane at the witness point's activity so
        // the skeleton stays feasible by construction.
        let activity: f64 = cs.iter().zip(&s.point).map(|(c, x)| c * x).sum();
        m.add_constraint(e, Cmp::Eq, 2.0 * activity);
    }
    (m, vars)
}

proptest! {
    // Fixed seed + bounded case count: CI runs are deterministic and any
    // failure reproduces locally with no persistence files.
    #![proptest_config(ProptestConfig {
        rng_seed: 0x17de_c0de_0002,
        ..ProptestConfig::with_cases(256)
    })]

    #[test]
    fn lp_solutions_are_feasible_and_dominant(lp in random_lp()) {
        let (model, _) = build(&lp);
        match model.solve() {
            Ok(sol) => {
                prop_assert!(model.violation(sol.values()) < 1e-6,
                    "reported optimal point violates constraints by {}",
                    model.violation(sol.values()));
                // Sampled feasible points must not beat the reported optimum.
                for k in 0..400 {
                    let p = sample_point(&lp, k);
                    if feasible(&lp, &p) {
                        let v = objective(&lp, &p);
                        match lp.sense {
                            Sense::Maximize =>
                                prop_assert!(v <= sol.objective + 1e-6,
                                    "sample {v} beats reported max {}", sol.objective),
                            Sense::Minimize =>
                                prop_assert!(v >= sol.objective - 1e-6,
                                    "sample {v} beats reported min {}", sol.objective),
                        }
                    }
                }
            }
            Err(SolveError::Infeasible) => {
                // No sampled point may be feasible. (Equality rows are thin:
                // samples rarely hit them, so only check inequality-only LPs.)
                if lp.rows.iter().all(|(_, cmp, _)| *cmp != Cmp::Eq) {
                    for k in 0..400 {
                        let p = sample_point(&lp, k);
                        prop_assert!(!feasible(&lp, &p),
                            "solver said infeasible but {p:?} is feasible");
                    }
                }
            }
            Err(SolveError::Unbounded) => {
                // All variables are boxed, so LPs here are never unbounded.
                prop_assert!(false, "bounded LP reported unbounded");
            }
            Err(e) => prop_assert!(false, "unexpected solver error: {e}"),
        }
    }

    #[test]
    fn min_never_exceeds_max_over_same_feasible_set(lp in random_lp()) {
        let (mut model, vars) = build(&lp);
        let e = LinExpr::from_terms(vars.iter().copied().zip(lp.obj.iter().copied()), 0.0);
        if let Ok((lo, hi)) = model.solve_range(e, &itne_milp::SolveOptions::default()) {
            prop_assert!(lo <= hi + 1e-9, "min {lo} > max {hi}");
        }
    }

    #[test]
    fn branch_and_bound_matches_binary_enumeration(
        nb in 2usize..=6,
        nc in 1usize..=2,
        rows in proptest::collection::vec(
            (proptest::collection::vec(-3i32..=3, 8), cmp_strategy(), -4i32..=6), 1..=3),
        obj in proptest::collection::vec(-3i32..=3, 8),
    ) {
        let mut m = Model::new();
        let bins: Vec<_> = (0..nb).map(|_| m.add_binary()).collect();
        let conts: Vec<_> = (0..nc).map(|_| m.add_var(-2.0, 2.0)).collect();
        let all: Vec<_> = bins.iter().chain(&conts).copied().collect();
        for (cs, cmp, rhs) in &rows {
            let e = LinExpr::from_terms(
                all.iter().copied().zip(cs.iter().map(|&c| c as f64)), 0.0);
            m.add_constraint(e, *cmp, *rhs as f64);
        }
        let objective = LinExpr::from_terms(
            all.iter().copied().zip(obj.iter().map(|&c| c as f64)), 0.0);
        m.set_objective(Sense::Maximize, objective.clone());

        let got = m.solve();

        // Brute force: fix each binary assignment, solve the continuous rest.
        let mut best: Option<f64> = None;
        for mask in 0u32..(1 << nb) {
            let mut fixed = m.clone();
            for (i, &b) in bins.iter().enumerate() {
                let v = ((mask >> i) & 1) as f64;
                fixed.set_bounds(b, v, v);
            }
            if let Ok(s) = fixed.solve() {
                best = Some(best.map_or(s.objective, |b: f64| b.max(s.objective)));
            }
        }

        match (got, best) {
            (Ok(sol), Some(b)) => prop_assert!(
                (sol.objective - b).abs() < 1e-5,
                "B&B {} vs enumeration {b}", sol.objective),
            (Err(SolveError::Infeasible), None) => {}
            (Ok(sol), None) => prop_assert!(false,
                "B&B found {} but enumeration says infeasible", sol.objective),
            (Err(SolveError::Infeasible), Some(b)) => prop_assert!(false,
                "B&B says infeasible but enumeration found {b}"),
            (Err(e), _) => prop_assert!(false, "unexpected error: {e}"),
        }
    }

    /// The tentpole property: a warm-started `BatchSolver` sweep over one
    /// feasible skeleton agrees with an independent cold solve of every
    /// objective, to solver tolerance — including after any fallback.
    #[test]
    fn warm_sweeps_match_independent_cold_solves(s in feasible_sweep()) {
        let (mut model, vars) = build_sweep_model(&s);
        let opts = SolveOptions::default();

        let cold: Vec<Result<f64, SolveError>> = s.objectives.iter().map(|(sense, cs)| {
            let mut fresh = model.clone();
            fresh.set_objective(
                *sense,
                LinExpr::from_terms(vars.iter().copied().zip(cs.iter().copied()), 0.0),
            );
            fresh.solve_with(&opts).map(|sol| sol.objective)
        }).collect();

        let mut batch = BatchSolver::new(&mut model);
        for ((sense, cs), cold_result) in s.objectives.iter().zip(&cold) {
            let e = LinExpr::from_terms(vars.iter().copied().zip(cs.iter().copied()), 0.0);
            match (batch.solve(*sense, e, &opts), cold_result) {
                (Ok(w), Ok(c)) => prop_assert!(
                    (w.objective - c).abs() < 1e-6,
                    "warm {} vs cold {c} ({sense:?} over {cs:?})", w.objective),
                (Err(_), Err(_)) => {}
                (w, c) => prop_assert!(false,
                    "paths disagree on solvability: warm {:?} vs cold {c:?}",
                    w.map(|sol| sol.objective)),
            }
        }

        // The skeleton is feasible by construction (witness point in-box and
        // on the right side of every row), so nothing may report Infeasible.
        for c in &cold {
            prop_assert!(!matches!(c, Err(SolveError::Infeasible)),
                "feasible-by-construction skeleton reported infeasible");
        }
        let st = batch.stats();
        prop_assert_eq!(st.solves, s.objectives.len() as u64);
        prop_assert_eq!(st.warm_hits + st.warm_misses + st.cold_solves, st.solves);
    }

    /// Differential property of the engine rewrite: the dense tableau and
    /// the sparse revised simplex (PFI eta file, partial pricing, periodic
    /// refactorization) must agree on every random skeleton — same optimum
    /// to solver tolerance, and the same verdict on solvability.
    #[test]
    fn dense_and_sparse_engines_agree(lp in random_lp()) {
        let (model, _) = build(&lp);
        let dense = model.solve_with(&engine_opts(Engine::Dense));
        let sparse = model.solve_with(&engine_opts(Engine::Sparse));
        match (&dense, &sparse) {
            (Ok(d), Ok(s)) => prop_assert!(
                (d.objective - s.objective).abs() < 1e-6,
                "dense {} vs sparse {}", d.objective, s.objective),
            (Err(SolveError::Infeasible), Err(SolveError::Infeasible)) => {}
            _ => prop_assert!(false,
                "engines disagree on solvability: dense {:?} vs sparse {:?}",
                dense.as_ref().map(|s| s.objective),
                sparse.as_ref().map(|s| s.objective)),
        }
    }

    /// The same differential property through the warm-started sweep path:
    /// a sparse-engine `BatchSolver` sweep (resident reoptimization, eta
    /// refactorizations and all) matches a dense-engine sweep objective by
    /// objective on every feasible skeleton.
    #[test]
    fn sparse_and_dense_warm_sweeps_agree(s in feasible_sweep()) {
        let run = |engine: Engine| -> Vec<Result<f64, SolveError>> {
            let (mut model, vars) = build_sweep_model(&s);
            let opts = engine_opts(engine);
            let mut batch = BatchSolver::new(&mut model);
            s.objectives.iter().map(|(sense, cs)| {
                let e = LinExpr::from_terms(
                    vars.iter().copied().zip(cs.iter().copied()), 0.0);
                batch.solve(*sense, e, &opts).map(|sol| sol.objective)
            }).collect()
        };
        let sparse = run(Engine::Sparse);
        let dense = run(Engine::Dense);
        for (i, (sp, de)) in sparse.iter().zip(&dense).enumerate() {
            match (sp, de) {
                (Ok(a), Ok(b)) => prop_assert!(
                    (a - b).abs() < 1e-6,
                    "objective {i}: sparse {a} vs dense {b}"),
                (Err(_), Err(_)) => {}
                _ => prop_assert!(false,
                    "objective {i}: engines disagree on solvability \
                     (sparse {sp:?} vs dense {de:?})"),
            }
        }
    }

    /// Basis snapshot/restore across *separate* solves
    /// (`Model::solve_with_basis`) also agrees with cold solves; when no
    /// snapshot is available (e.g. a frozen artificial from the duplicated
    /// row) the chain silently degrades to cold solves and must stay exact.
    #[test]
    fn basis_snapshot_chains_match_cold_solves(s in feasible_sweep()) {
        let (model, vars) = build_sweep_model(&s);
        let opts = SolveOptions::default();
        let mut chain: Option<itne_milp::Basis> = None;
        for (sense, cs) in &s.objectives {
            let mut m = model.clone();
            m.set_objective(
                *sense,
                LinExpr::from_terms(vars.iter().copied().zip(cs.iter().copied()), 0.0),
            );
            let cold = m.solve_with(&opts);
            match (m.solve_with_basis(&opts, chain.as_ref()), cold) {
                (Ok((warm, next)), Ok(c)) => {
                    prop_assert!(
                        (warm.objective - c.objective).abs() < 1e-6,
                        "restored {} vs cold {} ({sense:?} over {cs:?})",
                        warm.objective, c.objective);
                    chain = next;
                }
                (Err(_), Err(_)) => chain = None,
                (w, c) => prop_assert!(false,
                    "paths disagree on solvability: warm {:?} vs cold {:?}",
                    w.map(|(sol, _)| sol.objective), c.map(|sol| sol.objective)),
            }
        }
    }
}
