//! Property-based cross-checks of the LP/MILP solver.
//!
//! * Any solution reported `Optimal` must be feasible and must dominate every
//!   feasible point we can find by sampling.
//! * Branch-and-bound must agree with brute-force enumeration over all binary
//!   assignments (each completed by an LP on the continuous remainder).
//! * Warm-started batched sweeps ([`BatchSolver`]) and basis snapshot/restore
//!   chains ([`Model::solve_with_basis`]) must agree with independent cold
//!   solves on every objective of randomly generated *feasible* skeletons —
//!   including when a restore is rejected and falls back to a cold solve.

use itne_certcheck::{verify_bound, RowCmp, RowRef};
use itne_milp::{BatchSolver, Cmp, Engine, LinExpr, Model, Sense, SolveError, SolveOptions};
use proptest::prelude::*;

/// Every LP engine, differentially tested against each other below. The LU
/// engine folds `≤/≥` range pairs into bounded slacks, so it exercises a
/// genuinely different internal row space than the eta and dense arms.
const ENGINES: [Engine; 3] = [Engine::Lu, Engine::Eta, Engine::Dense];

fn engine_opts(engine: Engine) -> SolveOptions {
    SolveOptions {
        engine,
        ..Default::default()
    }
}

// Mirror of the certifier's outward pad-and-snap (`itne_core::query`): pad
// by an absolute-plus-relative slack dominating simplex round-off, then snap
// outward onto the 2⁻³⁰ dyadic grid. Engines that take different pivot paths
// to the same optimum land within a few ulps of each other, so their snapped
// bounds must be *bitwise* equal — the property the golden suite relies on.
const SOUND_SLACK: f64 = 1e-7;
const BOUND_GRID: f64 = 1.0 / (1024.0 * 1024.0 * 1024.0);

fn snap_bound(v: f64, sense: Sense) -> f64 {
    let (padded, up) = match sense {
        Sense::Maximize => (v + SOUND_SLACK + v.abs() * 1e-9, true),
        Sense::Minimize => (v - SOUND_SLACK - v.abs() * 1e-9, false),
    };
    let q = padded / BOUND_GRID;
    let q = if up { q.ceil() } else { q.floor() };
    q * BOUND_GRID
}

/// Validates the solution's dual certificate against its own snapped claim
/// in exact arithmetic, exactly as the certifier would under
/// `ITNE_CHECK_CERTS=1`.
fn certificate_checks(model: &Model, sol: &itne_milp::Solution) -> bool {
    let Some(cert) = sol.certificate() else {
        return false;
    };
    let rows: Vec<RowRef<'_>> = (0..model.num_constraints())
        .map(|r| RowRef {
            terms: model.row_terms(r),
            cmp: match model.row_cmp(r) {
                Cmp::Le => RowCmp::Le,
                Cmp::Ge => RowCmp::Ge,
                Cmp::Eq => RowCmp::Eq,
            },
            rhs: model.row_rhs(r),
        })
        .collect();
    let bounds: Vec<(f64, f64)> = (0..model.num_vars()).map(|j| model.bounds_at(j)).collect();
    let sense = model.objective_sense().unwrap_or(Sense::Minimize);
    verify_bound(
        model.num_vars(),
        &rows,
        &bounds,
        model.objective_terms(),
        model.objective_constant(),
        sense == Sense::Maximize,
        &cert.row_duals,
        snap_bound(sol.objective, sense),
    )
    .is_valid()
}

#[derive(Debug, Clone)]
struct RandomLp {
    n: usize,
    bounds: Vec<(f64, f64)>,
    rows: Vec<(Vec<f64>, Cmp, f64)>,
    obj: Vec<f64>,
    sense: Sense,
}

fn cmp_strategy() -> impl Strategy<Value = Cmp> {
    prop_oneof![Just(Cmp::Le), Just(Cmp::Ge), Just(Cmp::Eq)]
}

fn coef() -> impl Strategy<Value = f64> {
    // Small integers keep instances well-scaled and make failures readable.
    (-4i32..=4).prop_map(|v| v as f64)
}

fn random_lp() -> impl Strategy<Value = RandomLp> {
    (
        2usize..=5,
        1usize..=4,
        prop_oneof![Just(Sense::Minimize), Just(Sense::Maximize)],
    )
        .prop_flat_map(|(n, m, sense)| {
            let bounds = proptest::collection::vec((-3i32..=0, 0i32..=3), n)
                .prop_map(|bs| bs.into_iter().map(|(l, h)| (l as f64, h as f64)).collect());
            let rows = proptest::collection::vec(
                (
                    proptest::collection::vec(coef(), n),
                    cmp_strategy(),
                    -5i32..=5,
                ),
                m,
            )
            .prop_map(|rs| {
                rs.into_iter()
                    .map(|(cs, cmp, rhs)| (cs, cmp, rhs as f64))
                    .collect::<Vec<_>>()
            });
            let obj = proptest::collection::vec(coef(), n);
            (Just(n), bounds, rows, obj, Just(sense))
        })
        .prop_map(|(n, bounds, rows, obj, sense)| RandomLp {
            n,
            bounds,
            rows,
            obj,
            sense,
        })
}

fn build(lp: &RandomLp) -> (Model, Vec<itne_milp::VarId>) {
    assert_eq!(lp.bounds.len(), lp.n, "strategy produced inconsistent LP");
    let mut m = Model::new();
    let vars: Vec<_> = lp.bounds.iter().map(|&(l, h)| m.add_var(l, h)).collect();
    for (cs, cmp, rhs) in &lp.rows {
        let e = LinExpr::from_terms(vars.iter().copied().zip(cs.iter().copied()), 0.0);
        m.add_constraint(e, *cmp, *rhs);
    }
    let obj = LinExpr::from_terms(vars.iter().copied().zip(lp.obj.iter().copied()), 0.0);
    m.set_objective(lp.sense, obj);
    (m, vars)
}

/// Deterministic low-discrepancy point in the variable box.
fn sample_point(lp: &RandomLp, k: usize) -> Vec<f64> {
    lp.bounds
        .iter()
        .enumerate()
        .map(|(j, &(l, h))| {
            let t = ((k * 2654435761 + j * 40503) % 1000) as f64 / 999.0;
            l + t * (h - l)
        })
        .collect()
}

fn feasible(lp: &RandomLp, x: &[f64]) -> bool {
    lp.rows.iter().all(|(cs, cmp, rhs)| {
        let lhs: f64 = cs.iter().zip(x).map(|(c, v)| c * v).sum();
        match cmp {
            Cmp::Le => lhs <= rhs + 1e-9,
            Cmp::Ge => lhs >= rhs - 1e-9,
            Cmp::Eq => (lhs - rhs).abs() <= 1e-9,
        }
    })
}

fn objective(lp: &RandomLp, x: &[f64]) -> f64 {
    lp.obj.iter().zip(x).map(|(c, v)| c * v).sum()
}

/// A random LP skeleton that is feasible *by construction* (every row's rhs
/// is offset from the activity of a known in-box point), plus a batch of
/// objectives to sweep over it — the certifier's query shape.
#[derive(Debug, Clone)]
struct FeasibleSweep {
    bounds: Vec<(f64, f64)>,
    /// The known feasible point, used only to build `rows`.
    point: Vec<f64>,
    rows: Vec<(Vec<f64>, Cmp, f64)>,
    objectives: Vec<(Sense, Vec<f64>)>,
    /// Append a scaled copy of row 0's hyperplane pinned at the witness
    /// point, as an equality. Linearly dependent rows routinely strand a
    /// frozen artificial in the final basis, which makes basis snapshots
    /// unavailable (`solve_with_basis` returns no snapshot) and forces
    /// restore chains through their cold-fallback path.
    duplicate_row: bool,
}

fn sense_strategy() -> impl Strategy<Value = Sense> {
    prop_oneof![Just(Sense::Minimize), Just(Sense::Maximize)]
}

fn feasible_sweep() -> impl Strategy<Value = FeasibleSweep> {
    (2usize..=5, 1usize..=4, 2usize..=6, any::<bool>())
        .prop_flat_map(|(n, m, k, duplicate_row)| {
            let bounds = proptest::collection::vec((-3i32..=0, 0i32..=3), n).prop_map(|bs| {
                bs.into_iter()
                    .map(|(l, h)| (l as f64, h as f64))
                    .collect::<Vec<_>>()
            });
            // Interior-ish point, parameterized on a coarse grid.
            let point_t = proptest::collection::vec(0u32..=8, n);
            let rows = proptest::collection::vec(
                (
                    proptest::collection::vec(coef(), n),
                    cmp_strategy(),
                    0i32..=2,
                ),
                m,
            );
            let objectives = proptest::collection::vec(
                (sense_strategy(), proptest::collection::vec(coef(), n)),
                k,
            );
            (bounds, point_t, rows, objectives, Just(duplicate_row))
        })
        .prop_map(|(bounds, point_t, raw_rows, objectives, duplicate_row)| {
            let point: Vec<f64> = bounds
                .iter()
                .zip(&point_t)
                .map(|(&(l, h), &t)| l + (t as f64 / 8.0) * (h - l))
                .collect();
            let rows = raw_rows
                .into_iter()
                .map(|(cs, cmp, margin)| {
                    let activity: f64 = cs.iter().zip(&point).map(|(c, x)| c * x).sum();
                    let rhs = match cmp {
                        Cmp::Le => activity + margin as f64,
                        Cmp::Ge => activity - margin as f64,
                        Cmp::Eq => activity,
                    };
                    (cs, cmp, rhs)
                })
                .collect();
            FeasibleSweep {
                bounds,
                point,
                rows,
                objectives,
                duplicate_row,
            }
        })
}

fn build_sweep_model(s: &FeasibleSweep) -> (Model, Vec<itne_milp::VarId>) {
    let mut m = Model::new();
    let vars: Vec<_> = s.bounds.iter().map(|&(l, h)| m.add_var(l, h)).collect();
    for (cs, cmp, rhs) in &s.rows {
        let e = LinExpr::from_terms(vars.iter().copied().zip(cs.iter().copied()), 0.0);
        m.add_constraint(e, *cmp, *rhs);
    }
    if s.duplicate_row {
        let (cs, _, _) = &s.rows[0];
        let e = LinExpr::from_terms(vars.iter().copied().zip(cs.iter().map(|&c| 2.0 * c)), 0.0);
        // Pin the duplicated hyperplane at the witness point's activity so
        // the skeleton stays feasible by construction.
        let activity: f64 = cs.iter().zip(&s.point).map(|(c, x)| c * x).sum();
        m.add_constraint(e, Cmp::Eq, 2.0 * activity);
    }
    (m, vars)
}

proptest! {
    // Fixed seed + bounded case count: CI runs are deterministic and any
    // failure reproduces locally with no persistence files.
    #![proptest_config(ProptestConfig {
        rng_seed: 0x17de_c0de_0002,
        ..ProptestConfig::with_cases(256)
    })]

    #[test]
    fn lp_solutions_are_feasible_and_dominant(lp in random_lp()) {
        let (model, _) = build(&lp);
        match model.solve() {
            Ok(sol) => {
                prop_assert!(model.violation(sol.values()) < 1e-6,
                    "reported optimal point violates constraints by {}",
                    model.violation(sol.values()));
                // Sampled feasible points must not beat the reported optimum.
                for k in 0..400 {
                    let p = sample_point(&lp, k);
                    if feasible(&lp, &p) {
                        let v = objective(&lp, &p);
                        match lp.sense {
                            Sense::Maximize =>
                                prop_assert!(v <= sol.objective + 1e-6,
                                    "sample {v} beats reported max {}", sol.objective),
                            Sense::Minimize =>
                                prop_assert!(v >= sol.objective - 1e-6,
                                    "sample {v} beats reported min {}", sol.objective),
                        }
                    }
                }
            }
            Err(SolveError::Infeasible) => {
                // No sampled point may be feasible. (Equality rows are thin:
                // samples rarely hit them, so only check inequality-only LPs.)
                if lp.rows.iter().all(|(_, cmp, _)| *cmp != Cmp::Eq) {
                    for k in 0..400 {
                        let p = sample_point(&lp, k);
                        prop_assert!(!feasible(&lp, &p),
                            "solver said infeasible but {p:?} is feasible");
                    }
                }
            }
            Err(SolveError::Unbounded) => {
                // All variables are boxed, so LPs here are never unbounded.
                prop_assert!(false, "bounded LP reported unbounded");
            }
            Err(e) => prop_assert!(false, "unexpected solver error: {e}"),
        }
    }

    #[test]
    fn min_never_exceeds_max_over_same_feasible_set(lp in random_lp()) {
        let (mut model, vars) = build(&lp);
        let e = LinExpr::from_terms(vars.iter().copied().zip(lp.obj.iter().copied()), 0.0);
        if let Ok((lo, hi)) = model.solve_range(e, &itne_milp::SolveOptions::default()) {
            prop_assert!(lo <= hi + 1e-9, "min {lo} > max {hi}");
        }
    }

    #[test]
    fn branch_and_bound_matches_binary_enumeration(
        nb in 2usize..=6,
        nc in 1usize..=2,
        rows in proptest::collection::vec(
            (proptest::collection::vec(-3i32..=3, 8), cmp_strategy(), -4i32..=6), 1..=3),
        obj in proptest::collection::vec(-3i32..=3, 8),
    ) {
        let mut m = Model::new();
        let bins: Vec<_> = (0..nb).map(|_| m.add_binary()).collect();
        let conts: Vec<_> = (0..nc).map(|_| m.add_var(-2.0, 2.0)).collect();
        let all: Vec<_> = bins.iter().chain(&conts).copied().collect();
        for (cs, cmp, rhs) in &rows {
            let e = LinExpr::from_terms(
                all.iter().copied().zip(cs.iter().map(|&c| c as f64)), 0.0);
            m.add_constraint(e, *cmp, *rhs as f64);
        }
        let objective = LinExpr::from_terms(
            all.iter().copied().zip(obj.iter().map(|&c| c as f64)), 0.0);
        m.set_objective(Sense::Maximize, objective.clone());

        let got = m.solve();

        // Brute force: fix each binary assignment, solve the continuous rest.
        let mut best: Option<f64> = None;
        for mask in 0u32..(1 << nb) {
            let mut fixed = m.clone();
            for (i, &b) in bins.iter().enumerate() {
                let v = ((mask >> i) & 1) as f64;
                fixed.set_bounds(b, v, v);
            }
            if let Ok(s) = fixed.solve() {
                best = Some(best.map_or(s.objective, |b: f64| b.max(s.objective)));
            }
        }

        match (got, best) {
            (Ok(sol), Some(b)) => prop_assert!(
                (sol.objective - b).abs() < 1e-5,
                "B&B {} vs enumeration {b}", sol.objective),
            (Err(SolveError::Infeasible), None) => {}
            (Ok(sol), None) => prop_assert!(false,
                "B&B found {} but enumeration says infeasible", sol.objective),
            (Err(SolveError::Infeasible), Some(b)) => prop_assert!(false,
                "B&B says infeasible but enumeration found {b}"),
            (Err(e), _) => prop_assert!(false, "unexpected error: {e}"),
        }
    }

    /// The tentpole property: a warm-started `BatchSolver` sweep over one
    /// feasible skeleton agrees with an independent cold solve of every
    /// objective, to solver tolerance — including after any fallback.
    #[test]
    fn warm_sweeps_match_independent_cold_solves(s in feasible_sweep()) {
        let (mut model, vars) = build_sweep_model(&s);
        let opts = SolveOptions::default();

        let cold: Vec<Result<f64, SolveError>> = s.objectives.iter().map(|(sense, cs)| {
            let mut fresh = model.clone();
            fresh.set_objective(
                *sense,
                LinExpr::from_terms(vars.iter().copied().zip(cs.iter().copied()), 0.0),
            );
            fresh.solve_with(&opts).map(|sol| sol.objective)
        }).collect();

        let mut batch = BatchSolver::new(&mut model);
        for ((sense, cs), cold_result) in s.objectives.iter().zip(&cold) {
            let e = LinExpr::from_terms(vars.iter().copied().zip(cs.iter().copied()), 0.0);
            match (batch.solve(*sense, e, &opts), cold_result) {
                (Ok(w), Ok(c)) => prop_assert!(
                    (w.objective - c).abs() < 1e-6,
                    "warm {} vs cold {c} ({sense:?} over {cs:?})", w.objective),
                (Err(_), Err(_)) => {}
                (w, c) => prop_assert!(false,
                    "paths disagree on solvability: warm {:?} vs cold {c:?}",
                    w.map(|sol| sol.objective)),
            }
        }

        // The skeleton is feasible by construction (witness point in-box and
        // on the right side of every row), so nothing may report Infeasible.
        for c in &cold {
            prop_assert!(!matches!(c, Err(SolveError::Infeasible)),
                "feasible-by-construction skeleton reported infeasible");
        }
        let st = batch.stats();
        prop_assert_eq!(st.solves, s.objectives.len() as u64);
        prop_assert_eq!(st.warm_hits + st.warm_misses + st.cold_solves, st.solves);
    }

    /// Differential property of the engine rewrite: the dense tableau, the
    /// eta-file revised simplex, and the LU-factorized engine (with its
    /// range-row folding) must agree on every random skeleton — the same
    /// verdict on solvability, *bitwise-identical* snapped certified bounds,
    /// and a dual certificate that validates the snapped claim in exact
    /// arithmetic on every arm.
    #[test]
    fn all_engines_agree_with_checkable_certificates(lp in random_lp()) {
        let (model, _) = build(&lp);
        let results: Vec<_> = ENGINES.iter()
            .map(|&e| model.solve_with(&engine_opts(e)))
            .collect();
        match &results[0] {
            Ok(first) => {
                let want = snap_bound(first.objective, lp.sense);
                for (engine, res) in ENGINES.iter().zip(&results) {
                    prop_assert!(res.is_ok(),
                        "{engine:?} failed ({:?}) where {:?} solved",
                        res.as_ref().err(), ENGINES[0]);
                    let sol = res.as_ref().unwrap();
                    let got = snap_bound(sol.objective, lp.sense);
                    prop_assert!(got.to_bits() == want.to_bits(),
                        "{engine:?} snapped bound {got} differs from {want}");
                    prop_assert!(sol.is_certified(),
                        "{engine:?} optimal LP solve must carry a certificate");
                    prop_assert!(certificate_checks(&model, sol),
                        "{engine:?} certificate fails on its snapped claim");
                }
            }
            Err(SolveError::Infeasible) => {
                for (engine, res) in ENGINES.iter().zip(&results) {
                    prop_assert!(
                        matches!(res, Err(SolveError::Infeasible)),
                        "{engine:?} says {:?} where {:?} says infeasible",
                        res.as_ref().map(|s| s.objective), ENGINES[0]);
                }
            }
            Err(e) => prop_assert!(false, "unexpected solver error: {e}"),
        }
    }

    /// The same differential property through the warm-started sweep path:
    /// `BatchSolver` sweeps (resident reoptimization, refactorizations and
    /// all) on each engine match objective by objective on every feasible
    /// skeleton — again with bitwise-identical snapped bounds and checkable
    /// certificates on every arm.
    #[test]
    fn warm_sweeps_agree_across_all_engines(s in feasible_sweep()) {
        let run = |engine: Engine| {
            let (mut model, vars) = build_sweep_model(&s);
            let opts = engine_opts(engine);
            let mut batch = BatchSolver::new(&mut model);
            s.objectives.iter().map(|(sense, cs)| {
                let e = LinExpr::from_terms(
                    vars.iter().copied().zip(cs.iter().copied()), 0.0);
                let sol = batch.solve(*sense, e, &opts)?;
                if !sol.is_certified() || !certificate_checks(batch.model(), &sol) {
                    return Err(SolveError::Numerical("certificate check".into()));
                }
                Ok(snap_bound(sol.objective, *sense))
            }).collect::<Vec<Result<f64, SolveError>>>()
        };
        let arms: Vec<_> = ENGINES.iter().map(|&e| run(e)).collect();
        for (engine, arm) in ENGINES.iter().zip(&arms).skip(1) {
            for (i, (got, want)) in arm.iter().zip(&arms[0]).enumerate() {
                match (got, want) {
                    (Ok(a), Ok(b)) => prop_assert!(
                        a.to_bits() == b.to_bits(),
                        "objective {i}: {engine:?} snapped {a} vs {:?} {b}",
                        ENGINES[0]),
                    (Err(_), Err(_)) => {}
                    _ => prop_assert!(false,
                        "objective {i}: {engine:?} {got:?} vs {:?} {want:?}",
                        ENGINES[0]),
                }
            }
        }
    }

    /// Basis snapshot/restore across *separate* solves
    /// (`Model::solve_with_basis`) also agrees with cold solves; when no
    /// snapshot is available (e.g. a frozen artificial from the duplicated
    /// row) the chain silently degrades to cold solves and must stay exact.
    #[test]
    fn basis_snapshot_chains_match_cold_solves(s in feasible_sweep()) {
        let (model, vars) = build_sweep_model(&s);
        let opts = SolveOptions::default();
        let mut chain: Option<itne_milp::Basis> = None;
        for (sense, cs) in &s.objectives {
            let mut m = model.clone();
            m.set_objective(
                *sense,
                LinExpr::from_terms(vars.iter().copied().zip(cs.iter().copied()), 0.0),
            );
            let cold = m.solve_with(&opts);
            match (m.solve_with_basis(&opts, chain.as_ref()), cold) {
                (Ok((warm, next)), Ok(c)) => {
                    prop_assert!(
                        (warm.objective - c.objective).abs() < 1e-6,
                        "restored {} vs cold {} ({sense:?} over {cs:?})",
                        warm.objective, c.objective);
                    chain = next;
                }
                (Err(_), Err(_)) => chain = None,
                (w, c) => prop_assert!(false,
                    "paths disagree on solvability: warm {:?} vs cold {:?}",
                    w.map(|(sol, _)| sol.objective), c.map(|sol| sol.objective)),
            }
        }
    }
}
