//! Regression lock for `Stats::max_residual`: every solve path must report
//! the *measured* violation of the returned point — never the struct
//! default. A solver that silently reports 0.0 would hide exactly the
//! numerical drift the residual gate exists to catch.

use itne_milp::{BatchSolver, Cmp, Engine, Model, Sense, SolveOptions};

fn opts(engine: Engine) -> SolveOptions {
    SolveOptions {
        engine,
        ..Default::default()
    }
}

/// An LP where *no* f64 point satisfies everything exactly: both variables
/// are fixed at 1 and the equality row asks for 0.1 + 0.2 = 0.3, which does
/// not hold in f64 (the sum is 0.30000000000000004). Any returned point
/// therefore violates either the row or a bound by a tiny positive amount —
/// within tolerance, so the solve succeeds, but strictly nonzero.
fn drifty() -> Model {
    let mut m = Model::new();
    let x = m.add_var(1.0, 1.0);
    let y = m.add_var(1.0, 1.0);
    m.add_constraint(0.1 * x + 0.2 * y, Cmp::Eq, 0.3);
    m.set_objective(Sense::Maximize, 1.0 * x + 1.0 * y);
    m
}

#[test]
fn cold_solves_report_measured_residual() {
    for engine in [Engine::Lu, Engine::Eta, Engine::Dense] {
        let m = drifty();
        let sol = m.solve_with(&opts(engine)).unwrap();
        let measured = m.violation(sol.values());
        assert_eq!(
            sol.stats.max_residual, measured,
            "{engine:?}: stats must carry the measured violation"
        );
        assert!(
            measured > 0.0,
            "{engine:?}: drifty model should have nonzero residual \
             (got {measured:e}) — the test would be vacuous otherwise"
        );
    }
}

#[test]
fn warm_started_solves_report_measured_residual() {
    // The drifty row here is a `Le` over a free variable so the final basis
    // is artificial-free and snapshots: at the optimum z is pinned between
    // the row (which wants z ≤ 0.3 − 0.30000000000000004 < 0) and its lower
    // bound 0, so some tiny violation is unavoidable at any returned point.
    let skeleton = |obj_sense: Sense, cz: f64| {
        let mut m = Model::new();
        let x = m.add_var(1.0, 1.0);
        let y = m.add_var(1.0, 1.0);
        let z = m.add_var(0.0, 10.0);
        m.add_constraint(0.1 * x + 0.2 * y + z, Cmp::Le, 0.3);
        m.add_constraint(x + z, Cmp::Le, 6.0);
        m.set_objective(obj_sense, cz * z + 1.0 * x);
        m
    };
    for engine in [Engine::Lu, Engine::Eta, Engine::Dense] {
        let o = opts(engine);
        let m = skeleton(Sense::Maximize, 1.0);
        let (cold, basis) = m.solve_with_basis(&o, None).unwrap();
        assert_eq!(cold.stats.max_residual, m.violation(cold.values()));
        let basis = basis.expect("cold solve yields a snapshot");

        let m2 = skeleton(Sense::Minimize, -2.0);
        let (warm, _) = m2.solve_with_basis(&o, Some(&basis)).unwrap();
        let measured = m2.violation(warm.values());
        assert_eq!(
            warm.stats.max_residual, measured,
            "{engine:?}: warm path must carry the measured violation"
        );
        assert!(measured > 0.0, "{engine:?}: residual should be nonzero");
    }
}

#[test]
fn batch_resident_solves_report_measured_residual() {
    for engine in [Engine::Lu, Engine::Eta, Engine::Dense] {
        let o = opts(engine);
        let mut m = Model::new();
        let x = m.add_var(1.0, 1.0);
        let y = m.add_var(1.0, 1.0);
        m.add_constraint(0.1 * x + 0.2 * y, Cmp::Eq, 0.3);

        let mut batch = BatchSolver::new(&mut m);
        for &(sense, cx, cy) in &[
            (Sense::Maximize, 1.0, 1.0),
            (Sense::Minimize, 1.0, -2.0),
            (Sense::Maximize, -0.5, 3.0),
        ] {
            let sol = batch.solve(sense, cx * x + cy * y, &o).unwrap();
            let measured = batch.model().violation(sol.values());
            assert_eq!(
                sol.stats.max_residual, measured,
                "{engine:?}: resident sweep must carry the measured violation"
            );
            assert!(measured > 0.0, "{engine:?}: residual should be nonzero");
        }
        assert!(
            batch.stats().warm_hits >= 1,
            "{engine:?}: the sweep should exercise the warm path"
        );
    }
}

#[test]
fn unconstrained_zero_residual_is_truthful() {
    // With no rows, the optimum sits exactly on variable bounds, so the
    // reported 0.0 is the measured violation, not an unset default.
    let mut m = Model::new();
    let x = m.add_var(-1.0, 2.0);
    m.set_objective(Sense::Maximize, 3.0 * x);
    let sol = m.solve().unwrap();
    assert_eq!(sol.stats.max_residual, 0.0);
    assert_eq!(m.violation(sol.values()), 0.0);
}
