//! Criterion benchmarks of end-to-end certification on small networks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use itne_core::example::fig1_network;
use itne_core::{certify_global, exact_global, CertifyOptions};
use itne_milp::SolveOptions;
use itne_nn::{initialize, Network, NetworkBuilder};
use std::hint::black_box;

fn trained(width: usize) -> Network {
    let mut net = NetworkBuilder::input(7)
        .dense_zeros(width, true)
        .expect("shape")
        .dense_zeros(width, true)
        .expect("shape")
        .dense_zeros(1, false)
        .expect("shape")
        .build();
    initialize(&mut net, 11);
    net
}

fn bench_certify(c: &mut Criterion) {
    let mut g = c.benchmark_group("certify");
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(3));
    g.sample_size(10);

    let fig1 = fig1_network();
    let dom2 = [(-1.0, 1.0), (-1.0, 1.0)];
    g.bench_function("fig1_algorithm1", |b| {
        b.iter(|| {
            black_box(
                certify_global(&fig1, &dom2, 0.1, &CertifyOptions::default()).expect("certifies"),
            )
        })
    });
    g.bench_function("fig1_exact_milp", |b| {
        b.iter(|| {
            black_box(exact_global(&fig1, &dom2, 0.1, SolveOptions::default()).expect("solves"))
        })
    });

    let dom7 = vec![(0.0, 1.0); 7];
    for width in [4usize, 8] {
        let net = trained(width);
        g.bench_with_input(BenchmarkId::new("algorithm1_mpg", width), &net, |b, net| {
            b.iter(|| {
                black_box(
                    certify_global(net, &dom7, 0.001, &CertifyOptions::default())
                        .expect("certifies"),
                )
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_certify);
criterion_main!(benches);
