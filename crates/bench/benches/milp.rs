//! Criterion micro-benchmarks of branch-and-bound on ReLU-style MILPs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use itne_milp::{Cmp, Model, Sense};
use std::hint::black_box;

/// A chain of big-M ReLU gadgets: y_{i+1} = relu(a·y_i + b) with binaries.
fn relu_chain(len: usize) -> Model {
    let mut m = Model::new();
    let mut y = m.add_var(-1.0, 1.0);
    for i in 0..len {
        let a = if i % 2 == 0 { 1.3 } else { -0.8 };
        let pre = m.add_var(-4.0, 4.0);
        m.add_constraint(1.0 * pre - a * y, Cmp::Eq, 0.1);
        let x = m.add_var(0.0, 4.0);
        let z = m.add_binary();
        m.add_constraint(1.0 * x - 1.0 * pre, Cmp::Ge, 0.0);
        m.add_constraint(1.0 * x - 1.0 * pre + 4.0 * z, Cmp::Le, 4.0);
        m.add_constraint(1.0 * x - 4.0 * z, Cmp::Le, 0.0);
        y = x;
    }
    m.set_objective(Sense::Maximize, 1.0 * y);
    m
}

fn bench_milp(c: &mut Criterion) {
    let mut g = c.benchmark_group("milp_relu_chain");
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(3));
    g.sample_size(20);
    for len in [4usize, 8, 12] {
        let m = relu_chain(len);
        g.bench_with_input(BenchmarkId::from_parameter(len), &m, |b, m| {
            b.iter(|| black_box(m.solve().expect("chain is feasible")))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_milp);
criterion_main!(benches);
