//! Criterion micro-benchmarks of twin interval propagation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use itne_core::ibp::ibp_twin;
use itne_core::Interval;
use itne_nn::{initialize, AffineNetwork, NetworkBuilder};
use std::hint::black_box;

fn make(width: usize) -> AffineNetwork {
    let mut net = NetworkBuilder::input(16)
        .dense_zeros(width, true)
        .expect("shape")
        .dense_zeros(width, true)
        .expect("shape")
        .dense_zeros(4, false)
        .expect("shape")
        .build();
    initialize(&mut net, 3);
    AffineNetwork::from_network(&net).expect("lowers")
}

fn bench_ibp(c: &mut Criterion) {
    let mut g = c.benchmark_group("ibp_twin");
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(3));
    for width in [64usize, 256, 1024] {
        let aff = make(width);
        let domain = vec![Interval::new(0.0, 1.0); 16];
        g.bench_with_input(BenchmarkId::from_parameter(width), &aff, |b, aff| {
            b.iter(|| black_box(ibp_twin(aff, &domain, 0.01)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_ibp);
criterion_main!(benches);
