//! Criterion micro-benchmarks of sub-network encoding (model construction).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use itne_core::encode::{encode_subnet, EncodeOptions, TargetKind};
use itne_core::ibp::ibp_twin;
use itne_core::subnet::SubNetwork;
use itne_core::Interval;
use itne_nn::{initialize, AffineNetwork, NetworkBuilder};
use std::hint::black_box;

fn bench_encode(c: &mut Criterion) {
    let mut g = c.benchmark_group("encode_subnet");
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(3));
    for width in [16usize, 64, 128] {
        let mut net = NetworkBuilder::input(16)
            .dense_zeros(width, true)
            .expect("shape")
            .dense_zeros(width, true)
            .expect("shape")
            .dense_zeros(1, false)
            .expect("shape")
            .build();
        initialize(&mut net, 3);
        let aff = AffineNetwork::from_network(&net).expect("lowers");
        let domain = vec![Interval::new(0.0, 1.0); 16];
        let bounds = ibp_twin(&aff, &domain, 0.01);
        let opts = EncodeOptions {
            delta: 0.01,
            ..Default::default()
        };
        g.bench_with_input(BenchmarkId::from_parameter(width), &aff, |b, aff| {
            b.iter(|| {
                let sub = SubNetwork::decompose(aff, 2, 0, 2);
                black_box(encode_subnet(
                    &sub,
                    &bounds,
                    TargetKind::PostActivation,
                    &opts,
                ))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_encode);
criterion_main!(benches);
