//! Criterion micro-bench of the 4-lane chunked FTRAN/BTRAN kernels
//! (`itne_milp::kernel`) against straight scalar loops, on the access
//! pattern the solvers actually run: a band-structured sparse triangular
//! sweep at 100/300/600 rows.
//!
//! * `lp_kernel_ftran` — forward substitution shape: per column, a scalar
//!   pivot divide then an indexed *scatter* (`v[idx[e]] -= val[e] * t`),
//!   the inner loop of `LuFactors::ftran` / `EtaFile::ftran`.
//! * `lp_kernel_btran` — transposed shape: per column, an indexed *gather*
//!   dot (`Σ val[e] · y[idx[e]]`), the inner loop of `btran` and of
//!   structural-column pricing.
//!
//! The chunked kernels are bitwise-compatible drop-ins (scatter touches
//! distinct indices, so order is free; the gather's fixed reduction tree is
//! absorbed by the bound snap — see `crates/milp/src/kernel.rs`), so the
//! only question is wall-clock, which is what this bench tracks across PRs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use itne_milp::kernel;
use std::hint::black_box;

/// Deterministic xorshift64 stream of values in `[-1, 1)`.
fn rng(seed: u64) -> impl FnMut() -> f64 {
    let mut state = seed | 1;
    move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
    }
}

/// A lower-band sparse matrix in the flat CSC layout the LU/eta files use:
/// column `j` holds `band` off-diagonal entries below row `j` (clipped at
/// `n`), mimicking the L factor / eta file of a band LP.
struct BandCols {
    n: usize,
    col_ptr: Vec<usize>,
    idx: Vec<usize>,
    val: Vec<f64>,
}

fn band_cols(n: usize, band: usize, seed: u64) -> BandCols {
    let mut next = rng(seed);
    let (mut col_ptr, mut idx, mut val) = (vec![0usize], Vec::new(), Vec::new());
    for j in 0..n {
        for i in (j + 1)..(j + 1 + band).min(n) {
            idx.push(i);
            val.push(next() * 0.5);
        }
        col_ptr.push(idx.len());
    }
    BandCols {
        n,
        col_ptr,
        idx,
        val,
    }
}

/// One FTRAN-shaped forward pass: pivot divide, then scatter the column.
fn ftran_pass(m: &BandCols, v: &mut [f64], scatter: impl Fn(&mut [f64], &[usize], &[f64], f64)) {
    for j in 0..m.n {
        let t = v[j];
        if t == 0.0 {
            continue;
        }
        let (e0, e1) = (m.col_ptr[j], m.col_ptr[j + 1]);
        scatter(v, &m.idx[e0..e1], &m.val[e0..e1], t);
    }
}

/// One BTRAN-shaped backward pass: gather-dot each column into its row.
fn btran_pass(m: &BandCols, y: &mut [f64], dot: impl Fn(&[f64], &[usize], &[f64]) -> f64) {
    for j in (0..m.n).rev() {
        let (e0, e1) = (m.col_ptr[j], m.col_ptr[j + 1]);
        let s = dot(y, &m.idx[e0..e1], &m.val[e0..e1]);
        y[j] -= s;
    }
}

fn scalar_scatter(v: &mut [f64], idx: &[usize], val: &[f64], t: f64) {
    for (&i, &x) in idx.iter().zip(val) {
        v[i] -= x * t;
    }
}

fn scalar_dot(x: &[f64], idx: &[usize], val: &[f64]) -> f64 {
    let mut s = 0.0;
    for (&i, &v) in idx.iter().zip(val) {
        s += x[i] * v;
    }
    s
}

fn bench_ftran(c: &mut Criterion) {
    let mut g = c.benchmark_group("lp_kernel_ftran");
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(3));
    g.sample_size(10);
    for n in [100usize, 300, 600] {
        let m = band_cols(n, 9, 42);
        let rhs: Vec<f64> = {
            let mut next = rng(7);
            (0..n).map(|_| next()).collect()
        };
        g.bench_with_input(BenchmarkId::new("scalar", n), &m, |b, m| {
            b.iter(|| {
                let mut v = rhs.clone();
                ftran_pass(m, &mut v, scalar_scatter);
                black_box(v[m.n - 1])
            })
        });
        g.bench_with_input(BenchmarkId::new("chunked", n), &m, |b, m| {
            b.iter(|| {
                let mut v = rhs.clone();
                ftran_pass(m, &mut v, kernel::scatter_sub);
                black_box(v[m.n - 1])
            })
        });
    }
    g.finish();
}

fn bench_btran(c: &mut Criterion) {
    let mut g = c.benchmark_group("lp_kernel_btran");
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(3));
    g.sample_size(10);
    for n in [100usize, 300, 600] {
        let m = band_cols(n, 9, 43);
        let rhs: Vec<f64> = {
            let mut next = rng(11);
            (0..n).map(|_| next()).collect()
        };
        g.bench_with_input(BenchmarkId::new("scalar", n), &m, |b, m| {
            b.iter(|| {
                let mut y = rhs.clone();
                btran_pass(m, &mut y, scalar_dot);
                black_box(y[0])
            })
        });
        g.bench_with_input(BenchmarkId::new("chunked", n), &m, |b, m| {
            b.iter(|| {
                let mut y = rhs.clone();
                btran_pass(m, &mut y, kernel::dot_gather);
                black_box(y[0])
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_ftran, bench_btran);
criterion_main!(benches);
