//! Criterion head-to-head of the two sparse revised-simplex engines: the
//! product-form eta file ([`Engine::Eta`]) vs the sparse LU factorization
//! with PFI updates ([`Engine::Lu`], the default).
//!
//! Two shapes:
//!
//! * `lp_lu_band` — conv-window-sized band skeletons (100/300/600 rows),
//!   each solved cold then swept warm under 8 objectives: the certifier's
//!   standard `LpRelaxY`/`LpRelaxX` workload.
//! * `lp_lu_longrun` — one 300-row skeleton under a 64-objective sweep.
//!   Pivot runs here far outlast the eta engine's refactorization interval,
//!   so it repeatedly pays dense Gauss–Jordan rebuilds while the LU engine
//!   amortizes one sparse factorization across the whole run — the workload
//!   the LU engine exists for.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use itne_milp::{BatchSolver, Cmp, Engine, LinExpr, Model, Sense, SolveOptions};
use std::hint::black_box;

/// Deterministic xorshift64 stream of values in `[-1, 1)`.
fn rng(seed: u64) -> impl FnMut() -> f64 {
    let mut state = seed | 1;
    move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
    }
}

/// A band-diagonal LP: `n` rows each touching `band` consecutive variables.
fn band_lp(n: usize, band: usize, seed: u64) -> (Model, Vec<itne_milp::VarId>) {
    let mut next = rng(seed);
    let mut m = Model::new();
    let vars: Vec<_> = (0..n).map(|_| m.add_var(-1.0, 1.0)).collect();
    for r in 0..n {
        let lo = r.saturating_sub(band / 2);
        let hi = (lo + band).min(n);
        let e = LinExpr::from_terms(vars[lo..hi].iter().map(|&v| (v, next())), 0.0);
        m.add_constraint(e, Cmp::Le, 0.5 + next().abs());
    }
    let obj = LinExpr::from_terms(vars.iter().map(|&v| (v, next())), 0.0);
    m.set_objective(Sense::Maximize, obj);
    (m, vars)
}

/// A deterministic batch of `k` random min/max objectives over `n` vars.
fn random_objectives(n: usize, k: usize, seed: u64) -> Vec<(Sense, Vec<f64>)> {
    let mut next = rng(seed);
    (0..k)
        .map(|i| {
            let sense = if i % 2 == 0 {
                Sense::Minimize
            } else {
                Sense::Maximize
            };
            (sense, (0..n).map(|_| next()).collect())
        })
        .collect()
}

const ARMS: [(&str, Engine); 2] = [("eta", Engine::Eta), ("lu", Engine::Lu)];

fn sweep(
    g: &mut criterion::BenchmarkGroup<'_>,
    param: usize,
    skeleton: &Model,
    vars: &[itne_milp::VarId],
    objectives: &[(Sense, Vec<f64>)],
) {
    let mk_expr =
        |cs: &[f64]| LinExpr::from_terms(vars.iter().copied().zip(cs.iter().copied()), 0.0);
    for (label, engine) in ARMS {
        let opts = SolveOptions {
            engine,
            ..Default::default()
        };
        g.bench_with_input(BenchmarkId::new(label, param), skeleton, |b, m| {
            b.iter(|| {
                let mut model = m.clone();
                let mut batch = BatchSolver::new(&mut model);
                let mut acc = 0.0;
                for (sense, cs) in objectives {
                    acc += batch
                        .solve(*sense, mk_expr(cs), &opts)
                        .expect("solves")
                        .objective;
                }
                black_box(acc)
            })
        });
    }
}

fn bench_band(c: &mut Criterion) {
    let mut g = c.benchmark_group("lp_lu_band");
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(3));
    g.sample_size(10);
    for n in [100usize, 300, 600] {
        let (skeleton, vars) = band_lp(n, 7, 42);
        let objectives = random_objectives(n, 8, 99);
        sweep(&mut g, n, &skeleton, &vars, &objectives);
    }
    g.finish();
}

fn bench_long_pivot_run(c: &mut Criterion) {
    let mut g = c.benchmark_group("lp_lu_longrun");
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(5));
    g.sample_size(10);
    let n = 300;
    let (skeleton, vars) = band_lp(n, 9, 7);
    let objectives = random_objectives(n, 64, 5);
    sweep(&mut g, n, &skeleton, &vars, &objectives);
    g.finish();
}

criterion_group!(benches, bench_band, bench_long_pivot_run);
criterion_main!(benches);
