//! Criterion micro-benchmarks of the LP solver hot path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use itne_milp::{Cmp, LinExpr, Model, Sense};
use std::hint::black_box;

/// A random dense LP with n variables and n constraints (deterministic).
fn random_lp(n: usize, seed: u64) -> Model {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
    };
    let mut m = Model::new();
    let vars: Vec<_> = (0..n).map(|_| m.add_var(-1.0, 1.0)).collect();
    for _ in 0..n {
        let e = LinExpr::from_terms(vars.iter().map(|&v| (v, next())), 0.0);
        m.add_constraint(e, Cmp::Le, 0.5 + next().abs());
    }
    let obj = LinExpr::from_terms(vars.iter().map(|&v| (v, next())), 0.0);
    m.set_objective(Sense::Maximize, obj);
    m
}

fn bench_lp(c: &mut Criterion) {
    let mut g = c.benchmark_group("lp_solve");
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(3));
    for n in [10usize, 40, 100] {
        let m = random_lp(n, 42);
        g.bench_with_input(BenchmarkId::from_parameter(n), &m, |b, m| {
            b.iter(|| black_box(m.solve().expect("bounded LPs solve")))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_lp);
criterion_main!(benches);
