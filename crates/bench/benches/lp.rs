//! Criterion micro-benchmarks of the LP solver hot path, including the
//! certifier's dominant shape: one skeleton swept under many objectives,
//! cold per objective vs warm-started through `BatchSolver`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use itne_milp::{BatchSolver, Cmp, Engine, LinExpr, Model, Sense, SolveOptions};
use std::hint::black_box;

/// Deterministic xorshift64 stream of values in `[-1, 1)`.
fn rng(seed: u64) -> impl FnMut() -> f64 {
    let mut state = seed | 1;
    move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
    }
}

/// A random dense LP with n variables and n constraints (deterministic).
fn random_lp(n: usize, seed: u64) -> (Model, Vec<itne_milp::VarId>) {
    let mut next = rng(seed);
    let mut m = Model::new();
    let vars: Vec<_> = (0..n).map(|_| m.add_var(-1.0, 1.0)).collect();
    for _ in 0..n {
        let e = LinExpr::from_terms(vars.iter().map(|&v| (v, next())), 0.0);
        m.add_constraint(e, Cmp::Le, 0.5 + next().abs());
    }
    let obj = LinExpr::from_terms(vars.iter().map(|&v| (v, next())), 0.0);
    m.set_objective(Sense::Maximize, obj);
    (m, vars)
}

fn bench_lp(c: &mut Criterion) {
    let mut g = c.benchmark_group("lp_solve");
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(3));
    for n in [10usize, 40, 100] {
        let (m, _) = random_lp(n, 42);
        g.bench_with_input(BenchmarkId::from_parameter(n), &m, |b, m| {
            b.iter(|| black_box(m.solve().expect("bounded LPs solve")))
        });
    }
    g.finish();
}

/// A deterministic batch of `k` random min/max objectives over `n` vars.
fn random_objectives(n: usize, k: usize, seed: u64) -> Vec<(Sense, Vec<f64>)> {
    let mut next = rng(seed);
    (0..k)
        .map(|i| {
            let sense = if i % 2 == 0 {
                Sense::Minimize
            } else {
                Sense::Maximize
            };
            (sense, (0..n).map(|_| next()).collect())
        })
        .collect()
}

/// The certifier's query shape: one skeleton, an objective sweep. `cold`
/// re-solves every objective from scratch; `warm` chains them through
/// `BatchSolver`, skipping phase 1 after the first solve. Same optima either
/// way (the proptests assert it); only the work differs.
fn bench_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("lp_sweep16");
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(3));
    let opts = SolveOptions::default();
    for n in [10usize, 40, 100] {
        let (skeleton, vars) = random_lp(n, 42);
        let objectives = random_objectives(n, 16, 99);
        let mk_expr =
            |cs: &[f64]| LinExpr::from_terms(vars.iter().copied().zip(cs.iter().copied()), 0.0);

        // Both arms clone the skeleton once per iteration and then reuse it
        // across the 16 objectives (the cold arm via set_objective + solve,
        // exactly the pre-batching production path), so the measured ratio
        // is solver work only, not clone overhead.
        g.bench_with_input(BenchmarkId::new("cold", n), &skeleton, |b, m| {
            b.iter(|| {
                let mut model = m.clone();
                let mut acc = 0.0;
                for (sense, cs) in &objectives {
                    model.set_objective(*sense, mk_expr(cs));
                    acc += model.solve_with(&opts).expect("solves").objective;
                }
                black_box(acc)
            })
        });
        g.bench_with_input(BenchmarkId::new("warm", n), &skeleton, |b, m| {
            b.iter(|| {
                let mut model = m.clone();
                let mut batch = BatchSolver::new(&mut model);
                let mut acc = 0.0;
                for (sense, cs) in &objectives {
                    acc += batch
                        .solve(*sense, mk_expr(cs), &opts)
                        .expect("solves")
                        .objective;
                }
                black_box(acc)
            })
        });
    }
    g.finish();
}

/// A band-diagonal LP shaped like one conv-window over-approximation
/// sub-problem: `n` rows each touching only `band` consecutive variables
/// (plus the implicit slack), so the `[A | I]` skeleton is overwhelmingly
/// sparse — the structure the revised simplex exploits.
fn band_lp(n: usize, band: usize, seed: u64) -> (Model, Vec<itne_milp::VarId>) {
    let mut next = rng(seed);
    let mut m = Model::new();
    let vars: Vec<_> = (0..n).map(|_| m.add_var(-1.0, 1.0)).collect();
    for r in 0..n {
        let lo = r.saturating_sub(band / 2);
        let hi = (lo + band).min(n);
        let e = LinExpr::from_terms(vars[lo..hi].iter().map(|&v| (v, next())), 0.0);
        m.add_constraint(e, Cmp::Le, 0.5 + next().abs());
    }
    let obj = LinExpr::from_terms(vars.iter().map(|&v| (v, next())), 0.0);
    m.set_objective(Sense::Maximize, obj);
    (m, vars)
}

/// Dense tableau vs both sparse revised-simplex engines (product-form eta
/// file, sparse LU) on conv-window-sized band skeletons: a cold solve plus
/// a warm 8-objective sweep per iteration, which is exactly the work one
/// `LpRelaxY`/`LpRelaxX` sub-problem does.
fn bench_sparse(c: &mut Criterion) {
    let mut g = c.benchmark_group("lp_sparse");
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(3));
    g.sample_size(10);
    for n in [100usize, 300, 600] {
        let (skeleton, vars) = band_lp(n, 7, 42);
        let objectives = random_objectives(n, 8, 99);
        let mk_expr =
            |cs: &[f64]| LinExpr::from_terms(vars.iter().copied().zip(cs.iter().copied()), 0.0);
        for (label, engine) in [
            ("dense", Engine::Dense),
            ("eta", Engine::Eta),
            ("lu", Engine::Lu),
        ] {
            let opts = SolveOptions {
                engine,
                ..Default::default()
            };
            g.bench_with_input(BenchmarkId::new(label, n), &skeleton, |b, m| {
                b.iter(|| {
                    let mut model = m.clone();
                    let mut batch = BatchSolver::new(&mut model);
                    let mut acc = 0.0;
                    for (sense, cs) in &objectives {
                        acc += batch
                            .solve(*sense, mk_expr(cs), &opts)
                            .expect("solves")
                            .objective;
                    }
                    black_box(acc)
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_lp, bench_sweep, bench_sparse);
criterion_main!(benches);
