//! The benchmark networks of Table I, trained and cached on disk so every
//! binary sees identical models.
//!
//! * **Auto-MPG DNNs 1-5** — two ReLU hidden layers of equal width over the
//!   7 synthetic fuel-economy features (paper: 8-64 total hidden neurons).
//! * **Digit DNNs 6-8** — 1-3 conv layers + one FC hidden layer over 14×14
//!   procedural digit images (paper: 28×28 MNIST; scaled per DESIGN.md).
//!
//! Models are trained deterministically (fixed seeds) and cached as JSON in
//! `artifacts/models/`.

use itne_data::{auto_mpg, digits};
use itne_nn::train::{train, Adam, Dataset, Loss, TrainConfig};
use itne_nn::{initialize, Network, NetworkBuilder};
use std::path::PathBuf;

/// Image side for the digit networks.
pub const DIGIT_SIZE: usize = 14;

/// Root of on-disk artifacts (models, results).
pub fn artifact_dir() -> PathBuf {
    let root = std::env::var("ITNE_ARTIFACTS").unwrap_or_else(|_| "artifacts".into());
    PathBuf::from(root)
}

fn model_path(name: &str) -> PathBuf {
    artifact_dir().join("models").join(format!("{name}.json"))
}

/// Loads a cached model or trains it with `build` and caches the result.
pub fn cached_model(name: &str, build: impl FnOnce() -> Network) -> Network {
    let path = model_path(name);
    if let Ok(net) = Network::load(&path) {
        return net;
    }
    let net = build();
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    // Write-then-rename keeps concurrent readers from seeing partial JSON.
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    if net.save(&tmp).is_ok() {
        let _ = std::fs::rename(&tmp, &path);
    }
    net
}

/// One row of Table I: an identifier, the trained network, its dataset, and
/// the perturbation bound the paper certifies it under.
pub struct BenchNet {
    /// Table row identifier (1-8).
    pub id: usize,
    /// Human-readable layer description (the paper's "Layers" column).
    pub layers: String,
    /// The trained network.
    pub net: Network,
    /// The training dataset (PGD under-approximation attacks its inputs).
    pub data: Dataset,
    /// Input domain `X`.
    pub domain: Vec<(f64, f64)>,
    /// Perturbation bound `δ`.
    pub delta: f64,
}

/// Builds the Auto-MPG network with `width` neurons in each of the two
/// hidden layers (Table I rows 1-5 use widths 4, 6, 8, 16, 32).
pub fn auto_mpg_net(id: usize, width: usize) -> BenchNet {
    let data = auto_mpg(400, 17);
    let name = format!("auto_mpg_w{width}");
    let net = cached_model(&name, || {
        let mut net = NetworkBuilder::input(7)
            .dense_zeros(width, true)
            .expect("static shape")
            .dense_zeros(width, true)
            .expect("static shape")
            .dense_zeros(1, false)
            .expect("static shape")
            .build();
        initialize(&mut net, 1000 + width as u64);
        let mut opt = Adam::new(4e-3);
        train(
            &mut net,
            &data,
            &mut opt,
            &TrainConfig {
                epochs: 150,
                batch_size: 32,
                loss: Loss::Mse,
                seed: 3,
                verbose: false,
            },
        );
        net
    });
    BenchNet {
        id,
        layers: "FC:2+out".into(),
        net,
        data: data.clone(),
        domain: vec![(0.0, 1.0); 7],
        delta: 0.001,
    }
}

/// Builds the digit classifier with `convs` conv layers (Table I rows 6-8).
pub fn digits_net(id: usize, convs: usize) -> BenchNet {
    assert!((1..=3).contains(&convs), "1-3 conv layers");
    let data = digits(1200, DIGIT_SIZE, 23);
    let name = format!("digits_c{convs}");
    let net = cached_model(&name, || {
        let mut b = NetworkBuilder::input_image(1, DIGIT_SIZE, DIGIT_SIZE)
            .conv2d(4, 3, 2, 1, true)
            .expect("conv1");
        if convs >= 2 {
            b = b.conv2d(8, 3, 1, 1, true).expect("conv2");
        }
        if convs >= 3 {
            b = b.conv2d(8, 3, 2, 1, true).expect("conv3");
        }
        let mut net = b
            .flatten()
            .expect("flatten")
            .dense_zeros(32, true)
            .expect("fc hidden")
            .dense_zeros(10, false)
            .expect("fc out")
            .build();
        initialize(&mut net, 2000 + convs as u64);
        let mut opt = Adam::new(2e-3);
        train(
            &mut net,
            &data,
            &mut opt,
            &TrainConfig {
                epochs: 30,
                batch_size: 32,
                loss: Loss::SoftmaxCrossEntropy,
                seed: 9,
                verbose: false,
            },
        );
        net
    });
    BenchNet {
        id,
        layers: format!("Conv:{convs} FC:1+out"),
        net,
        data: data.clone(),
        domain: vec![(0.0, 1.0); DIGIT_SIZE * DIGIT_SIZE],
        delta: 2.0 / 255.0,
    }
}

/// All Table-I rows. `quick` trims to the sizes exercised in CI smoke runs.
pub fn table1_nets(quick: bool) -> Vec<BenchNet> {
    let mut rows = vec![
        auto_mpg_net(1, 4),
        auto_mpg_net(2, 6),
        auto_mpg_net(3, 8),
        auto_mpg_net(4, 16),
    ];
    if !quick {
        rows.push(auto_mpg_net(5, 32));
        rows.push(digits_net(6, 1));
        rows.push(digits_net(7, 2));
        rows.push(digits_net(8, 3));
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use itne_nn::train::accuracy;

    #[test]
    fn auto_mpg_nets_train_to_low_error() {
        let b = auto_mpg_net(1, 4);
        let mse = itne_nn::train::evaluate_mse(&b.net, &b.data);
        assert!(mse < 0.02, "mse {mse}");
        assert_eq!(b.net.hidden_neurons(), 8);
    }

    #[test]
    fn digit_nets_learn_the_task() {
        let b = digits_net(6, 1);
        assert!(
            accuracy(&b.net, &b.data) > 0.9,
            "accuracy {}",
            accuracy(&b.net, &b.data)
        );
        // conv(4,s2): 4·7·7 = 196, + FC 32 → 228 hidden.
        assert_eq!(b.net.hidden_neurons(), 228);
    }

    #[test]
    fn caching_round_trips() {
        let a = auto_mpg_net(1, 4);
        let b = auto_mpg_net(1, 4); // second call hits the cache
        assert_eq!(a.net, b.net);
    }
}
