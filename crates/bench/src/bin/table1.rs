//! Regenerates the paper's Table I: certification time and output-variation
//! bounds across network sizes, comparing
//!
//! * `tR`  — the Reluplex-style splitting solver (exact),
//! * `tM`  — the Eq. 1 MILP (exact),
//! * `tour` — Algorithm 1 (ITNE + ND + LPR + refinement, this work),
//! * `ε̲`  — dataset-wise PGD under-approximation,
//! * `ε` / `ε̄` — exact / certified output-variation bounds.
//!
//! ```text
//! cargo run --release -p itne_bench --bin table1 \
//!     [-- --quick] [-- --budget <secs>] [-- --json <path>] [-- --threads <n>]
//! ```
//!
//! `--threads <n>` overrides the certifier's worker-thread count for every
//! row (the default follows the hardware, capped at 8 — see
//! `CertifyOptions`); the count actually used is recorded per row in the
//! JSON, so `BENCH_table1.json` captures scaling across PRs. Bounds are
//! bit-identical at any count; only `t_ours_s` moves.
//!
//! `--json <path>` writes the machine-readable rows (wall-times, pivot and
//! warm-start counters, refactorizations, ε̄ values *and* their exact bit
//! patterns) to an explicit path; `BENCH_table1.json` at the repo root is
//! the committed snapshot that tracks the perf trajectory across PRs.
//!
//! Absolute numbers differ from the paper (pure-Rust simplex vs Gurobi,
//! scaled datasets — see DESIGN.md); the *shape* is the reproduction target:
//! exact methods blow up exponentially with network size while Algorithm 1
//! scales, staying within a small factor of the exact bound (small nets) and
//! under ~3× of the PGD lower bound (conv nets).

use itne_attack::{dataset_under_approximation, PgdOptions};
use itne_bench::nets::{table1_nets, BenchNet};
use itne_bench::table::{fmt_duration, json_flag, save_json, save_json_at, Table};
use itne_core::split::{split_global, SplitOptions};
use itne_core::{certify_global, exact_global, CertifyOptions};
use serde::Serialize;
use std::time::{Duration, Instant};

#[derive(Serialize, Default)]
struct Row {
    id: usize,
    layers: String,
    neurons: usize,
    /// Certifier worker threads used for the `t_ours_s` run. ε̄ and its bit
    /// pattern are invariant in this; only the wall-clock moves.
    threads: usize,
    t_split_s: Option<f64>,
    t_milp_s: Option<f64>,
    t_ours_s: f64,
    /// Wall-time of the second `ours` arm, which re-runs Algorithm 1 with
    /// exact-rational certificate checking forced on (`ITNE_CHECK_CERTS=1`
    /// semantics). Its ε̄ bits are asserted identical to the unchecked arm.
    t_ours_checked_s: f64,
    eps_exact: Option<f64>,
    eps_under: f64,
    eps_ours: f64,
    split_exact: bool,
    milp_exact: bool,
    /// Exact bit pattern of ε̄ (hex), for cross-PR tracking without
    /// float-formatting ambiguity.
    eps_ours_bits: String,
    /// Queries that fell back to their IBP interval (degenerate/stalled LPs);
    /// a non-zero count means ε̄ is looser than the LP relaxation could give.
    fallbacks: u64,
    /// Whether the certificate-checked arm ran (always true since the second
    /// arm was added; kept so older snapshots compare meaningfully).
    check_certificates: bool,
    /// Certified LP bounds validated in exact arithmetic (checked arm).
    certs_checked: u64,
    /// Certificate checks that failed (the bound fell back to IBP). Must be
    /// zero on the golden nets — the golden suite asserts it.
    cert_failures: u64,
    pivots: u64,
    warm_hits: u64,
    warm_misses: u64,
    pivots_saved: u64,
    refactorizations: u64,
    eta_len: u64,
    nnz: u64,
    /// Nanoseconds spent refactorizing the basis (telemetry clock installed
    /// by this binary; `0` would mean telemetry was off).
    refactor_time_ns: u64,
    /// Nanoseconds spent in FTRAN/BTRAN passes.
    ftran_btran_time_ns: u64,
    /// Peak LU fill (stored `L`+`U` non-zeros) across all solves.
    lu_fill_nnz: u64,
    /// Resident-cache telemetry, shared schema with `serve_bench`'s JSON.
    /// This binary's one-shot runs never hit the encoding cache, so hits
    /// stay zero here; the fields exist so cross-PR tooling reads one row
    /// shape for both outputs.
    encoding_cache_hits: u64,
    encoding_cache_misses: u64,
    cross_query_warm_hits: u64,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json_path = json_flag(&args);
    let budget = args
        .iter()
        .position(|a| a == "--budget")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(if quick { 15 } else { 120 });
    let budget = Duration::from_secs(budget);
    let threads = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&t| (1..=64).contains(&t))
        .unwrap_or_else(|| CertifyOptions::default().threads);

    let mut table = Table::new(
        "Table I: global robustness certification across network sizes",
        &[
            "ID",
            "Layers",
            "Neurons",
            "tR",
            "tM",
            "tour",
            "ε̲ (PGD)",
            "ε (exact)",
            "ε̄ (ours)",
        ],
    );
    let mut rows = Vec::new();

    for bench in table1_nets(quick) {
        let row = run_row(&bench, budget, quick, threads);
        table.row(&[
            row.id.to_string(),
            row.layers.clone(),
            row.neurons.to_string(),
            fmt_time(row.t_split_s, row.split_exact, budget),
            fmt_time(row.t_milp_s, row.milp_exact, budget),
            fmt_duration(Duration::from_secs_f64(row.t_ours_s)),
            format!("{:.4}", row.eps_under),
            row.eps_exact.map_or("-".into(), |e| format!("{e:.4}")),
            format!("{:.4}", row.eps_ours),
        ]);
        rows.push(row);
        // Re-render incrementally so long runs show progress.
        table.print();
    }
    save_json("table1", &rows);
    if let Some(path) = &json_path {
        save_json_at(path, &rows);
    }

    println!("\nshape checks:");
    let exact_rows: Vec<&Row> = rows.iter().filter(|r| r.eps_exact.is_some()).collect();
    for r in &exact_rows {
        let e = r.eps_exact.expect("filtered");
        println!(
            "  DNN-{}: ε̲ ≤ ε ≤ ε̄  →  {:.4} ≤ {:.4} ≤ {:.4}   (over-approx {:.2}×)",
            r.id,
            r.eps_under,
            e,
            r.eps_ours,
            r.eps_ours / e
        );
    }
    for r in rows.iter().filter(|r| r.eps_exact.is_none()) {
        println!(
            "  DNN-{}: ε̲ ≤ ε̄  →  {:.4} ≤ {:.4}   (gap {:.2}×, paper target < 3×)",
            r.id,
            r.eps_under,
            r.eps_ours,
            r.eps_ours / r.eps_under.max(1e-12)
        );
    }
}

fn fmt_time(t: Option<f64>, exact: bool, budget: Duration) -> String {
    match t {
        None => "-".into(),
        Some(_) if !exact => format!(">{}", fmt_duration(budget)),
        Some(s) => fmt_duration(Duration::from_secs_f64(s)),
    }
}

fn run_row(bench: &BenchNet, budget: Duration, quick: bool, threads: usize) -> Row {
    let BenchNet {
        id,
        layers,
        net,
        data,
        domain,
        delta,
    } = bench;
    eprintln!(
        "-- DNN-{id} ({layers}, {} hidden neurons)",
        net.hidden_neurons()
    );
    let mut row = Row {
        id: *id,
        layers: layers.clone(),
        neurons: net.hidden_neurons(),
        threads,
        ..Default::default()
    };
    let is_conv = layers.starts_with("Conv");

    // --- Ours: the paper's settings (W=2 refine half for FC; W=3 refine 30
    //     for conv). ---
    let mut opts = if is_conv {
        CertifyOptions {
            window: 3,
            refine: 30,
            threads,
            ..Default::default()
        }
    } else {
        // Paper: half the hidden neurons refined. Each refined neuron costs
        // a binary per sub-problem; bound the count in quick mode so the
        // DFS B&B stays interactive (see EXPERIMENTS.md scaling note).
        let refine = if quick {
            (net.hidden_neurons() / 2).min(6)
        } else {
            net.hidden_neurons() / 2
        };
        CertifyOptions {
            window: 2,
            refine,
            threads,
            ..Default::default()
        }
    };
    // Timing telemetry: two clock reads per timed solver region, never
    // affects pivots or bounds. Surfaced in the JSON for cross-PR tracking.
    opts.solver.telemetry = Some(itne_core::deadline::telemetry_clock());
    let t0 = Instant::now();
    let ours = certify_global(net, domain, *delta, &opts).expect("certification runs");
    row.t_ours_s = t0.elapsed().as_secs_f64();
    row.eps_ours = ours.max_epsilon();
    row.eps_ours_bits = format!("{:#018x}", ours.max_epsilon().to_bits());
    let q = ours.stats.query;
    row.fallbacks = q.fallbacks;
    row.pivots = q.pivots;
    row.warm_hits = q.warm_hits;
    row.warm_misses = q.warm_misses;
    row.pivots_saved = q.pivots_saved;
    row.refactorizations = q.refactorizations;
    row.eta_len = q.eta_len;
    row.nnz = q.nnz;
    row.refactor_time_ns = q.refactor_time_ns;
    row.ftran_btran_time_ns = q.ftran_btran_time_ns;
    row.lu_fill_nnz = q.lu_fill_nnz;
    row.encoding_cache_hits = q.encoding_cache_hits;
    row.encoding_cache_misses = q.encoding_cache_misses;
    row.cross_query_warm_hits = q.cross_query_warm_hits;

    // --- Ours, second arm: identical settings with exact-rational
    //     certificate checking forced on (`ITNE_CHECK_CERTS=1` semantics).
    //     Checking is audit-only — bounds must not move a bit. ---
    let checked_opts = CertifyOptions {
        check_certificates: true,
        ..opts.clone()
    };
    let t0 = Instant::now();
    let checked = certify_global(net, domain, *delta, &checked_opts).expect("checked arm runs");
    row.t_ours_checked_s = t0.elapsed().as_secs_f64();
    row.check_certificates = true;
    row.certs_checked = checked.stats.query.certs_checked;
    row.cert_failures = checked.stats.query.cert_failures;
    assert_eq!(
        checked.max_epsilon().to_bits(),
        ours.max_epsilon().to_bits(),
        "certificate checking changed ε̄ bits on DNN-{id}"
    );
    eprintln!(
        "   checked arm: {}/{} certs checked/failed in {:.2}s (unchecked {:.2}s)",
        row.certs_checked, row.cert_failures, row.t_ours_checked_s, row.t_ours_s
    );
    // Surface the solver-health counters — a fallback means a sub-problem
    // kept its looser IBP range, which would otherwise be invisible here.
    eprintln!(
        "   ours: {} LPs, {} pivots, {} IBP fallbacks, warm {}/{} hit/miss \
         (~{} pivots saved), {} refactorizations, peak eta {}, max nnz {}",
        q.solves,
        q.pivots,
        q.fallbacks,
        q.warm_hits,
        q.warm_misses,
        q.pivots_saved,
        q.refactorizations,
        q.eta_len,
        q.nnz,
    );

    // --- Exact baselines (skip on conv nets, as the paper's do not scale). ---
    if !is_conv {
        let t0 = Instant::now();
        let milp = exact_global(net, domain, *delta, {
            let mut s = itne_core::deadline::solver_with_budget(budget);
            s.max_pivots = u64::MAX / 4; // budget governs, not pivot caps
            s
        })
        .expect("exact milp runs");
        row.t_milp_s = Some(t0.elapsed().as_secs_f64());
        row.milp_exact = milp.stats.query.fallbacks == 0 && t0.elapsed() < budget;
        if row.milp_exact {
            row.eps_exact = Some(milp.max_epsilon());
        }

        let t0 = Instant::now();
        let split = split_global(
            net,
            domain,
            *delta,
            &SplitOptions {
                deadline: Some(Instant::now() + budget),
                ..Default::default()
            },
        )
        .expect("split solver runs");
        row.t_split_s = Some(t0.elapsed().as_secs_f64());
        row.split_exact = split.exact;
        if split.exact && row.eps_exact.is_none() {
            row.eps_exact = Some(split.epsilons.iter().copied().fold(0.0, f64::max));
        }
    }

    // --- PGD under-approximation over (a slice of) the dataset. ---
    let samples = if quick { 60 } else { 200 };
    let inputs: Vec<Vec<f64>> = data.inputs.iter().take(samples).cloned().collect();
    let pgd = PgdOptions {
        steps: if is_conv { 12 } else { 25 },
        restarts: 2,
        ..Default::default()
    };
    let under = dataset_under_approximation(net, &inputs, *delta, Some(domain), &pgd);
    row.eps_under = under.epsilons.iter().copied().fold(0.0, f64::max);
    row
}
