//! Regenerates the paper's §III-B case study: safety verification of a
//! vision-based adaptive cruise control loop.
//!
//! ```text
//! cargo run --release -p itne-bench --bin case_study [-- --quick]
//! ```
//!
//! Pipeline (matching the paper's structure):
//!
//! 1. train the perception DNN on rendered camera scenes;
//! 2. bound its dataset model inaccuracy `Δd₁`;
//! 3. certify its global robustness `Δd₂ ≤ ε̄` at δ = 2/255 over the
//!    dataset-profiled input domain (Fig. 5 (c)/(d));
//! 4. compute the maximum estimation error `β` the control loop tolerates
//!    (robust invariant set inside the safe region; paper: 0.14);
//! 5. verdict: formally safe iff `Δd₁ + ε̄ ≤ β`;
//! 6. closed-loop FGSM simulation at δ ∈ {0, 2, 5, 10}/255, reproducing the
//!    escalation the paper reports (safe at the assumed δ; bound exceedances
//!    beyond it; unsafe episodes at 10/255).

use itne_bench::nets::cached_model;
use itne_bench::table::{fmt_duration, save_json, Table};
use itne_control::{
    analyze, max_tolerable_estimation_error, simulate, PerceptionConfig, PerceptionModel, SafeSet,
    SimConfig,
};
use itne_core::{certify_global, CertifyOptions};
use itne_data::camera::camera_dataset;
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct CaseStudyResult {
    hidden_neurons: usize,
    dd1_model_error: f64,
    dd2_certified: f64,
    dd_total: f64,
    beta_tolerable: f64,
    verified_safe: bool,
    delta_safe: f64,
    cert_seconds: f64,
    sim: Vec<SimRow>,
}

#[derive(Serialize)]
struct SimRow {
    delta_num: f64,
    label: String,
    max_abs_dd: f64,
    exceed_steps: usize,
    total_steps: usize,
    unsafe_episodes: usize,
    episodes: usize,
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let delta = 2.0 / 255.0;

    // --- 1. Perception model (cached across runs). ---
    let cfg = PerceptionConfig::default();
    let data = camera_dataset(&cfg.spec, cfg.train_samples, cfg.seed ^ 0xcafe);
    let net = cached_model("case_study_perception_v2", || {
        PerceptionModel::train_new(&cfg).0.net
    });
    let model = PerceptionModel {
        net,
        spec: cfg.spec,
    };
    let dd1 = model.model_error(&data);
    println!(
        "perception DNN: {} hidden neurons; Δd₁ (model inaccuracy) = {dd1:.4}  (paper: 0.0730)",
        model.net.hidden_neurons()
    );

    // --- 2. Certify global robustness over the profiled input domain. ---
    let domain = model.input_domain(&data, delta);
    let opts = CertifyOptions {
        window: 2,
        refine: if quick { 0 } else { 2 },
        threads: 2,
        ..Default::default()
    };
    let t0 = Instant::now();
    let report = certify_global(&model.net, &domain, delta, &opts).expect("certification runs");
    let cert_time = t0.elapsed();
    let dd2 = report.epsilon(0);
    println!(
        "certified (δ = 2/255):  Δd₂ ≤ ε̄ = {dd2:.4}  in {}  (paper: 0.0568)",
        fmt_duration(cert_time)
    );

    // --- 3. Control-side tolerance via invariant sets. ---
    let safe = SafeSet::default();
    let beta = max_tolerable_estimation_error(&safe, 1e-4);
    let an = analyze(beta, &safe);
    println!(
        "invariant set analysis: max tolerable |Δd| = β = {beta:.4}  (paper: 0.14); \
         RPI box [{:.3}, {:.3}] vs safe [{:.1}, {:.1}]",
        an.rpi_half_widths[0],
        an.rpi_half_widths[1],
        an.safe_half_widths[0],
        an.safe_half_widths[1]
    );

    let dd = dd1 + dd2;
    let verified = dd <= beta;
    println!(
        "\ncombined |Δd| ≤ Δd₁ + Δd₂ = {dd:.4}  (paper: 0.1298)  →  VERDICT: {}",
        if verified {
            "formally SAFE at δ = 2/255"
        } else {
            "NOT verifiable at δ = 2/255"
        }
    );

    // Largest perturbation bound with a formal safety certificate: bisect on
    // δ (ε̄ is monotone in δ). This reproduces the paper's structural claim —
    // a δ with an end-to-end proof — even when the from-scratch-trained
    // network is less robust than the paper's (see EXPERIMENTS.md).
    let headroom = beta - dd1;
    let mut delta_safe = 0.0;
    if headroom > 0.0 && !verified {
        let (mut lo, mut hi) = (0.0f64, delta);
        for _ in 0..7 {
            let mid = 0.5 * (lo + hi);
            let r = certify_global(&model.net, &domain, mid, &opts).expect("certification runs");
            if dd1 + r.epsilon(0) <= beta {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        delta_safe = lo;
        println!(
            "largest certified-safe perturbation: δ* ≈ {:.4} ({:.2}/255) — formally safe for all ‖p‖∞ ≤ δ*",
            delta_safe,
            delta_safe * 255.0
        );
    } else if verified {
        delta_safe = delta;
    }

    // --- 4. FGSM-in-the-loop simulation at escalating δ. ---
    let (episodes, steps) = if quick { (6, 200) } else { (30, 600) };
    let mut table = Table::new(
        "closed-loop simulation with FGSM camera perturbation",
        &["δ", "max|Δd|", "exceed β", "unsafe episodes"],
    );
    let mut sims = Vec::new();
    for (label, d) in [
        ("0 (clean)", 0.0),
        ("2/255", delta),
        ("5/255", 5.0 / 255.0),
        ("10/255", 10.0 / 255.0),
    ] {
        let r = simulate(
            &model,
            beta,
            &safe,
            &SimConfig {
                episodes,
                steps,
                delta: d,
                seed: 11,
            },
        );
        table.row(&[
            label.into(),
            format!("{:.4}", r.max_abs_dd),
            format!("{}/{}", r.exceed_steps, r.total_steps),
            format!(
                "{}/{} ({:.0}%)",
                r.unsafe_episodes,
                r.episodes,
                100.0 * r.unsafe_rate()
            ),
        ]);
        sims.push(SimRow {
            delta_num: d,
            label: label.into(),
            max_abs_dd: r.max_abs_dd,
            exceed_steps: r.exceed_steps,
            total_steps: r.total_steps,
            unsafe_episodes: r.unsafe_episodes,
            episodes: r.episodes,
        });
    }
    table.print();
    println!(
        "paper's observation: never exceeds the bound at the assumed δ; occasional\n\
         exceedances at 5/255; ~17% unsafe simulations at 10/255."
    );

    save_json(
        "case_study",
        &CaseStudyResult {
            hidden_neurons: model.net.hidden_neurons(),
            dd1_model_error: dd1,
            dd2_certified: dd2,
            dd_total: dd,
            beta_tolerable: beta,
            verified_safe: verified,
            delta_safe,
            cert_seconds: cert_time.as_secs_f64(),
            sim: sims,
        },
    );
}
