//! Regenerates the paper's Fig. 5 artifacts: (b) an example camera image,
//! (c)/(d) the lower/upper per-pixel bounds of the DNN input space (the
//! certification domain), plus near/far scene examples. Images are written
//! as PGM files under `artifacts/figures/`.
//!
//! ```text
//! cargo run --release -p itne-bench --bin fig5
//! ```

use itne_bench::table::save_pgm;
use itne_data::camera::{camera_dataset, pixel_bounds, render_scene, CameraSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let spec = CameraSpec::default();
    let mut rng = StdRng::seed_from_u64(5);

    // (b) Example images captured by the ego vehicle at several distances.
    for (name, d) in [
        ("fig5b_near", 0.6),
        ("fig5b_nominal", 1.2),
        ("fig5b_far", 1.8),
    ] {
        let img = render_scene(&spec, d, 0.2, 1.0, 0.01, &mut rng);
        save_pgm(name, spec.width, spec.height, &img);
        println!("{name}: distance {d} → mean intensity {:.3}", mean(&img));
    }

    // (c)/(d) Per-pixel lower/upper bounds over the training distribution —
    // the input domain X that global robustness is certified over.
    let data = camera_dataset(&spec, 2000, 42);
    let bounds = pixel_bounds(&data);
    let lower: Vec<f64> = bounds.iter().map(|b| b.0).collect();
    let upper: Vec<f64> = bounds.iter().map(|b| b.1).collect();
    save_pgm("fig5c_domain_lower", spec.width, spec.height, &lower);
    save_pgm("fig5d_domain_upper", spec.width, spec.height, &upper);

    let width: f64 = bounds.iter().map(|b| b.1 - b.0).sum::<f64>() / bounds.len() as f64;
    println!(
        "input space: {} pixels, mean per-pixel range {:.3} (static background narrows the domain)",
        bounds.len(),
        width
    );
}

fn mean(v: &[f64]) -> f64 {
    v.iter().sum::<f64>() / v.len() as f64
}
