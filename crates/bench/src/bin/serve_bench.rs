//! Resident-engine benchmark: the ISSUE-10 service workload — one registered
//! net answering a δ-sweep across several decomposition windows — timed
//! against the cold loop that re-runs `certify_global` from scratch per
//! query.
//!
//! ```text
//! cargo run --release -p itne_bench --bin serve_bench \
//!     [-- --json <path>] [-- --threads <n>]
//! ```
//!
//! The workload is 1 net × 16 δ values × 3 windows (48 queries). The cold
//! arm pays IBP + encoding + cold simplex per query; the resident arm loads
//! the net once (registry pre-bounds), re-parameterizes cached encodings for
//! every repeated `(window, refine)` session, and warm-starts each directed
//! solve from the basis the previous query stored.
//!
//! This binary *asserts* the engine's contract rather than just reporting
//! it: ε̄ bits byte-identical to the cold path on every query, zero
//! certificate failures (set `ITNE_CHECK_CERTS=1` to validate every bound in
//! exact arithmetic), and ≥ 3× resident speedup.

use itne_bench::nets::auto_mpg_net;
use itne_bench::table::{json_flag, save_json, save_json_at, Table};
use itne_core::{certify_global, CertifyOptions};
use itne_serve::{CertEngine, QueryRequest};
use serde::Serialize;
use std::time::Instant;

/// Queries per window; 3 windows → 48 queries total.
const DELTAS: usize = 16;
const WINDOWS: [usize; 3] = [2, 3, 4];

#[derive(Serialize)]
struct ServeBenchReport {
    net: String,
    threads: usize,
    /// Whether every certified bound was validated in exact rational
    /// arithmetic (`ITNE_CHECK_CERTS=1`) in both arms.
    check_certificates: bool,
    queries: usize,
    t_cold_s: f64,
    t_resident_s: f64,
    speedup: f64,
    /// Byte-for-byte ε̄ agreement between the arms, per query. Asserted.
    bits_identical: bool,
    pivots_cold: u64,
    pivots_resident: u64,
    solves_resident: u64,
    warm_hits: u64,
    encoding_cache_hits: u64,
    encoding_cache_misses: u64,
    cross_query_warm_hits: u64,
    certs_checked: u64,
    cert_failures: u64,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let json_path = json_flag(&args);
    let threads = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&t| (1..=64).contains(&t))
        .unwrap_or_else(|| CertifyOptions::default().threads);
    let check = CertifyOptions::default().check_certificates;

    let bench = auto_mpg_net(5, 48);
    let deltas: Vec<f64> = (1..=DELTAS).map(|i| 2.5e-4 * i as f64).collect();
    let opts = |window: usize| CertifyOptions {
        window,
        refine: 0,
        threads,
        check_certificates: check,
        ..Default::default()
    };
    eprintln!(
        "-- serve_bench: {} × {} δ × {} windows ({} queries, {} threads, check_certs={})",
        bench.layers,
        DELTAS,
        WINDOWS.len(),
        DELTAS * WINDOWS.len(),
        threads,
        check
    );

    // --- Cold arm: a fresh one-shot certification per query. ---
    let mut cold_bits: Vec<Vec<u64>> = Vec::new();
    let mut pivots_cold = 0u64;
    let t0 = Instant::now();
    for &w in &WINDOWS {
        for &d in &deltas {
            let r = certify_global(&bench.net, &bench.domain, d, &opts(w))
                .expect("cold certification runs");
            pivots_cold += r.stats.query.pivots;
            assert_eq!(r.stats.query.cert_failures, 0, "cold arm cert failure");
            cold_bits.push(r.epsilons.iter().map(|e| e.to_bits()).collect());
        }
    }
    let t_cold = t0.elapsed().as_secs_f64();

    // --- Resident arm: one engine, same query sequence. ---
    let engine = CertEngine::new(threads, 1);
    engine
        .register("auto_mpg_w48", &bench.net, &bench.domain)
        .expect("registration");
    let mut resident_bits: Vec<Vec<u64>> = Vec::new();
    let mut pivots_resident = 0u64;
    let t0 = Instant::now();
    for &w in &WINDOWS {
        for &d in &deltas {
            let q = QueryRequest {
                delta: d,
                window: w,
                refine: 0,
                check_certs: check,
            };
            let resp = engine.certify("auto_mpg_w48", &q).expect("resident query");
            pivots_resident += resp.stats.query.pivots;
            resident_bits.push(resp.epsilons.iter().map(|e| e.to_bits()).collect());
        }
    }
    let t_resident = t0.elapsed().as_secs_f64();
    let stats = engine.stats();

    let bits_identical = cold_bits == resident_bits;
    let report = ServeBenchReport {
        net: bench.layers.clone(),
        threads,
        check_certificates: check,
        queries: DELTAS * WINDOWS.len(),
        t_cold_s: t_cold,
        t_resident_s: t_resident,
        speedup: t_cold / t_resident.max(1e-12),
        bits_identical,
        pivots_cold,
        pivots_resident,
        solves_resident: stats.solves,
        warm_hits: stats.warm_hits,
        encoding_cache_hits: stats.encoding_cache_hits,
        encoding_cache_misses: stats.encoding_cache_misses,
        cross_query_warm_hits: stats.cross_query_warm_hits,
        certs_checked: stats.certs_checked,
        cert_failures: stats.cert_failures,
    };

    let mut table = Table::new(
        "Resident certification engine vs cold per-query loop",
        &["arm", "time", "pivots", "enc hits", "x-query warm"],
    );
    table.row(&[
        "cold".into(),
        format!("{t_cold:.3}s"),
        pivots_cold.to_string(),
        "-".into(),
        "-".into(),
    ]);
    table.row(&[
        "resident".into(),
        format!("{t_resident:.3}s"),
        pivots_resident.to_string(),
        format!(
            "{}/{}",
            stats.encoding_cache_hits,
            stats.encoding_cache_hits + stats.encoding_cache_misses
        ),
        stats.cross_query_warm_hits.to_string(),
    ]);
    table.print();
    println!(
        "speedup {:.2}×, bits identical: {}, certs {}/{} checked/failed",
        report.speedup, bits_identical, stats.certs_checked, stats.cert_failures
    );

    save_json("serve_bench", &report);
    if let Some(path) = &json_path {
        save_json_at(path, &report);
    }

    // The engine's contract, hard-asserted so CI fails loudly on regression.
    assert!(
        bits_identical,
        "resident ε̄ bits diverged from the cold path"
    );
    assert_eq!(stats.cert_failures, 0, "resident arm cert failure");
    assert!(
        report.speedup >= 3.0,
        "resident speedup {:.2}× below the 3× floor (cold {t_cold:.3}s, resident {t_resident:.3}s)",
        report.speedup
    );
}
