//! Regenerates the paper's Fig. 3: the ReLU distance relation
//! `Δx = relu(y + Δy) − relu(y)` and its LP relaxation (Eq. 6).
//!
//! ```text
//! cargo run --release -p itne-bench --bin fig3
//! ```
//!
//! Prints an ASCII rendering of the reachable (Δy, Δx) region for `y` over a
//! dense grid (the shaded region of Fig. 3) together with the Eq. 6 bounding
//! lines, and *verifies empirically* that every reachable point lies within
//! the relaxation.

use itne_core::interval::{distance_relaxation_bounds, relu_distance, Interval};

const COLS: usize = 61;
const ROWS: usize = 25;

fn main() {
    let dy = Interval::new(-1.0, 1.0);
    let (l, u) = distance_relaxation_bounds(dy);
    println!(
        "ReLU distance relation over Δy ∈ [{}, {}], y ∈ [-3, 3]:",
        dy.lo, dy.hi
    );
    println!("  Eq. 6 box: l = {l}, u = {u}");
    println!("  lower line: Δx ≥ l(u − Δy)/(u − l); upper line: Δx ≤ u(Δy − l)/(u − l)\n");

    // Mark every reachable (Δy, Δx) cell by sampling y.
    let mut grid = vec![[false; COLS]; ROWS];
    let mut violations = 0usize;
    let mut max_points = 0usize;
    // `i` drives both the sample coordinate and the column index.
    #[allow(clippy::needless_range_loop)]
    for i in 0..COLS {
        let d = dy.lo + dy.width() * i as f64 / (COLS - 1) as f64;
        for k in 0..=600 {
            let y = -3.0 + 6.0 * k as f64 / 600.0;
            let dx = relu_distance(y, d);
            // Eq. 6 containment check.
            let lo_line = l * (u - d) / (u - l);
            let hi_line = u * (d - l) / (u - l);
            if dx < lo_line - 1e-12 || dx > hi_line + 1e-12 {
                violations += 1;
            }
            let r = ((dx - l) / (u - l) * (ROWS - 1) as f64).round() as usize;
            let r = (ROWS - 1).saturating_sub(r.min(ROWS - 1));
            if !grid[r][i] {
                max_points += 1;
            }
            grid[r][i] = true;
        }
    }

    // Overlay the relaxation boundary lines.
    for (r, row) in grid.iter().enumerate() {
        let mut line = String::new();
        for (i, &filled) in row.iter().enumerate() {
            let d = dy.lo + dy.width() * i as f64 / (COLS - 1) as f64;
            let dx_here = u - (u - l) * r as f64 / (ROWS - 1) as f64;
            let lo_line = l * (u - d) / (u - l);
            let hi_line = u * (d - l) / (u - l);
            let cell = (u - l) / (ROWS - 1) as f64;
            if (dx_here - lo_line).abs() < cell / 2.0 || (dx_here - hi_line).abs() < cell / 2.0 {
                line.push('*'); // relaxation boundary
            } else if filled {
                line.push('#'); // reachable ReLU-distance point
            } else {
                line.push(' ');
            }
        }
        let axis = u - (u - l) * r as f64 / (ROWS - 1) as f64;
        println!("{axis:>6.2} |{line}|");
    }
    println!("{:>6} +{}+", "", "-".repeat(COLS));
    println!("{:>8}Δy = {:.1} … {:.1}", "", dy.lo, dy.hi);

    println!(
        "\nempirical containment: {max_points} distinct cells sampled, {violations} Eq. 6 violations"
    );
    assert_eq!(
        violations, 0,
        "Eq. 6 relaxation failed to contain the relation!"
    );
    println!("Eq. 6 contains the entire reachable region — as Fig. 3 illustrates.");
}
