//! Regenerates the paper's Fig. 4: the certification processes of exact
//! MILP, network decomposition (ND) and LP relaxation (LPR) on the Fig. 1
//! illustrating example — local robustness (upper half) and global
//! robustness under both twin encodings (lower half).
//!
//! ```text
//! cargo run --release -p itne-bench --bin fig4
//! ```

use itne_bench::table::{save_json, Table};
use itne_core::encode::{EncodingKind, Relaxation};
use itne_core::example::fig1_affine;
use itne_core::local::certify_local;
use itne_core::oneshot::{oneshot_global, oneshot_local};
use itne_core::{certify_global_affine, CertifyOptions, Interval};
use itne_milp::SolveOptions;
use serde::Serialize;

const DOM: [(f64, f64); 2] = [(-1.0, 1.0), (-1.0, 1.0)];
const DELTA: f64 = 0.1;

#[derive(Serialize)]
struct Fig4Row {
    method: String,
    ours_lo: f64,
    ours_hi: f64,
    paper_lo: f64,
    paper_hi: f64,
}

fn fmt(i: Interval) -> String {
    format!("[{:.4}, {:.4}]", i.lo, i.hi)
}

fn main() {
    let aff = fig1_affine();
    let solver = SolveOptions::default();
    let mut rows: Vec<Fig4Row> = Vec::new();

    // ---------------- Local robustness at x₀ = (0,0) ----------------
    let mut local = Table::new(
        "Fig. 4 (upper): local robustness ranges of x̂⁽²⁾ at x₀ = (0,0), δ = 0.1",
        &["method", "ours", "paper"],
    );
    let net = itne_core::example::fig1_network();

    let exact_local = certify_local(
        &net,
        &[0.0, 0.0],
        DELTA,
        None,
        &CertifyOptions {
            relaxation: Relaxation::Exact,
            window: 2,
            ..Default::default()
        },
    )
    .expect("fig1 local certifies");
    push(
        &mut local,
        &mut rows,
        "local exact",
        exact_local.output_ranges[0],
        (0.0, 0.125),
    );

    let nd_local = certify_local(
        &net,
        &[0.0, 0.0],
        DELTA,
        None,
        &CertifyOptions {
            relaxation: Relaxation::Exact,
            window: 1,
            ..Default::default()
        },
    )
    .expect("fig1 local certifies");
    push(
        &mut local,
        &mut rows,
        "local ND (W=1)",
        nd_local.output_ranges[0],
        (0.0, 0.15),
    );

    let lpr_local = oneshot_local(&aff, &[0.0, 0.0], DELTA, None, Relaxation::Lpr, 0, &solver)
        .expect("fig1 local lpr");
    push(
        &mut local,
        &mut rows,
        "local LPR",
        lpr_local.x[0],
        (0.0, 0.144),
    );
    local.print();

    // ---------------- Global robustness ----------------
    let mut global = Table::new(
        "Fig. 4 (lower): global robustness ranges of Δx⁽²⁾ over X = [-1,1]², δ = 0.1",
        &["method", "ours", "paper"],
    );

    let exact = oneshot_global(
        &aff,
        &DOM,
        DELTA,
        EncodingKind::Itne,
        Relaxation::Exact,
        0,
        &solver,
    )
    .expect("exact");
    push(
        &mut global,
        &mut rows,
        "exact (Eq. 1 MILP)",
        exact.dx[0],
        (-0.2, 0.2),
    );

    let btne_nd = certify_global_affine(
        &aff,
        &DOM,
        DELTA,
        &CertifyOptions {
            window: 1,
            encoding: EncodingKind::Btne,
            relaxation: Relaxation::Exact,
            ..Default::default()
        },
    )
    .expect("btne nd");
    push(
        &mut global,
        &mut rows,
        "BTNE ND (W=1)",
        btne_nd.bounds.dx[1][0],
        (-1.5, 1.5),
    );

    let btne_lpr = oneshot_global(
        &aff,
        &DOM,
        DELTA,
        EncodingKind::Btne,
        Relaxation::Lpr,
        0,
        &solver,
    )
    .expect("btne lpr");
    // The paper composes one-sided bounds and reports [-2.85, 1.5]; our
    // coupled LP over the same relaxation is tighter (see EXPERIMENTS.md).
    push(
        &mut global,
        &mut rows,
        "BTNE LPR",
        btne_lpr.dx[0],
        (-2.85, 1.5),
    );

    let itne_nd = certify_global_affine(
        &aff,
        &DOM,
        DELTA,
        &CertifyOptions {
            window: 1,
            relaxation: Relaxation::Exact,
            ..Default::default()
        },
    )
    .expect("itne nd");
    push(
        &mut global,
        &mut rows,
        "ITNE ND (W=1)",
        itne_nd.bounds.dx[1][0],
        (-0.3, 0.3),
    );

    let itne_lpr = oneshot_global(
        &aff,
        &DOM,
        DELTA,
        EncodingKind::Itne,
        Relaxation::Lpr,
        0,
        &solver,
    )
    .expect("itne lpr");
    push(
        &mut global,
        &mut rows,
        "ITNE LPR",
        itne_lpr.dx[0],
        (-0.275, 0.275),
    );

    let alg1 =
        certify_global_affine(&aff, &DOM, DELTA, &CertifyOptions::default()).expect("algorithm 1");
    push(
        &mut global,
        &mut rows,
        "Algorithm 1 (W=2)",
        alg1.bounds.dx[1][0],
        (-0.25, 0.25), // tighter than Fig. 4's one-shot LPR; see EXPERIMENTS.md
    );
    global.print();

    println!("\ntightness vs exact width 0.4:");
    for r in &rows[4..] {
        println!("  {:<20} {:.2}×", r.method, (r.ours_hi - r.ours_lo) / 0.4);
    }
    save_json("fig4", &rows);
}

fn push(t: &mut Table, rows: &mut Vec<Fig4Row>, method: &str, ours: Interval, paper: (f64, f64)) {
    t.row(&[
        method.to_string(),
        fmt(ours),
        format!("[{:.4}, {:.4}]", paper.0, paper.1),
    ]);
    rows.push(Fig4Row {
        method: method.to_string(),
        ours_lo: ours.lo,
        ours_hi: ours.hi,
        paper_lo: paper.0,
        paper_hi: paper.1,
    });
}
