//! Ablation: selective refinement count `r` — the LP↔MILP continuum of
//! §II-E. `r = 0` is pure LPR; `r = all` recovers the exact sub-network
//! solves of ND.
//!
//! ```text
//! cargo run --release -p itne-bench --bin ablation_refine
//! ```

use itne_bench::nets::auto_mpg_net;
use itne_bench::table::{fmt_duration, save_json, Table};
use itne_core::{certify_global, exact_global, CertifyOptions};
use serde::Serialize;
use std::time::{Duration, Instant};

#[derive(Serialize)]
struct Row {
    refine: usize,
    eps: f64,
    over_exact: f64,
    seconds: f64,
    milp_nodes: u64,
    fallbacks: u64,
}

fn main() {
    let bench = auto_mpg_net(0, 8);
    let exact = exact_global(
        &bench.net,
        &bench.domain,
        bench.delta,
        itne_core::deadline::solver_with_budget(Duration::from_secs(600)),
    )
    .expect("exact is tractable at this size");
    let e = exact.max_epsilon();
    println!("exact ε = {e:.5}\n");

    let mut table = Table::new(
        "Ablation: refinement count r (mpg-8x8, W = 2)",
        &["r", "ε̄", "ε̄/ε", "time", "B&B nodes", "fallbacks"],
    );
    let mut rows = Vec::new();
    let mut last = f64::INFINITY;
    for r in [0usize, 2, 4, 8, 16] {
        let opts = CertifyOptions {
            window: 2,
            refine: r,
            threads: 2,
            ..Default::default()
        };
        let t = Instant::now();
        let rep = certify_global(&bench.net, &bench.domain, bench.delta, &opts)
            .expect("certification runs");
        let dt = t.elapsed();
        table.row(&[
            r.to_string(),
            format!("{:.5}", rep.max_epsilon()),
            format!("{:.3}×", rep.max_epsilon() / e),
            fmt_duration(dt),
            rep.stats.query.nodes.to_string(),
            rep.stats.query.fallbacks.to_string(),
        ]);
        assert!(
            rep.max_epsilon() <= last + 1e-9,
            "refinement made the bound worse: r={r}"
        );
        last = rep.max_epsilon();
        rows.push(Row {
            refine: r,
            eps: rep.max_epsilon(),
            over_exact: rep.max_epsilon() / e,
            seconds: dt.as_secs_f64(),
            milp_nodes: rep.stats.query.nodes,
            fallbacks: rep.stats.query.fallbacks,
        });
    }
    table.print();
    save_json("ablation_refine", &rows);
    println!("\nε̄ tightens monotonically toward the exact bound as more neurons keep\nexact (binary) ReLU encodings, at exponentially growing B&B cost.");
}
