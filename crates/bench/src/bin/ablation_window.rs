//! Ablation: network-decomposition window size `W` — the accuracy/cost
//! trade-off behind the paper's choice of W = 2 (FC) and W = 3 (conv).
//!
//! ```text
//! cargo run --release -p itne-bench --bin ablation_window
//! ```

use itne_bench::nets::{auto_mpg_net, digits_net};
use itne_bench::table::{fmt_duration, save_json, Table};
use itne_core::{certify_global, CertifyOptions};
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct Row {
    net: String,
    window: usize,
    eps: f64,
    seconds: f64,
    lps: u64,
    fallbacks: u64,
    warm_hits: u64,
}

fn main() {
    let mut table = Table::new(
        "Ablation: window size W (ITNE + LPR, no refinement)",
        &["net", "W", "ε̄", "time", "LPs", "fallbacks", "warm hits"],
    );
    let mut rows = Vec::new();

    let mpg = auto_mpg_net(0, 8);
    let dig = digits_net(0, 1);
    let cases: [(&str, &itne_bench::nets::BenchNet, &[usize]); 2] =
        [("mpg-8x8", &mpg, &[1, 2, 3]), ("digits-c1", &dig, &[1, 2])];

    for (name, bench, windows) in cases {
        for &w in windows {
            let opts = CertifyOptions {
                window: w,
                threads: 2,
                ..Default::default()
            };
            let t = Instant::now();
            let r = certify_global(&bench.net, &bench.domain, bench.delta, &opts)
                .expect("certification runs");
            let dt = t.elapsed();
            table.row(&[
                name.into(),
                w.to_string(),
                format!("{:.5}", r.max_epsilon()),
                fmt_duration(dt),
                r.stats.query.solves.to_string(),
                r.stats.query.fallbacks.to_string(),
                r.stats.query.warm_hits.to_string(),
            ]);
            rows.push(Row {
                net: name.into(),
                window: w,
                eps: r.max_epsilon(),
                seconds: dt.as_secs_f64(),
                lps: r.stats.query.solves,
                fallbacks: r.stats.query.fallbacks,
                warm_hits: r.stats.query.warm_hits,
            });
        }
    }
    table.print();
    save_json("ablation_window", &rows);
    println!("\ndeeper windows keep more cross-layer correlation (tighter ε̄) at larger\nper-neuron LP cost — the paper's W = 2/3 sits at the knee. (The digits net\nstops at W = 2 here: W = 3 windows reach the 196-pixel input and are slow\non the dense-tableau simplex — see the scaling note in EXPERIMENTS.md.)");
}
