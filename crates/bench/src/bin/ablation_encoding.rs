//! Ablation: interleaving (ITNE) vs basic (BTNE) twin-network encoding, and
//! the paper-faithful Eq. 6 distance relaxation vs the y-aware extension —
//! quantifying §II-D's claim ("combining ITNE with ND and LPR significantly
//! improves the approximation tightness over BTNE") on trained networks.
//!
//! ```text
//! cargo run --release -p itne-bench --bin ablation_encoding
//! ```

use itne_bench::nets::auto_mpg_net;
use itne_bench::table::{fmt_duration, save_json, Table};
use itne_core::{certify_global, CertifyOptions, EncodingKind};
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct Row {
    width: usize,
    eps_itne: f64,
    eps_itne_y_aware: f64,
    eps_btne: f64,
    btne_over_itne: f64,
    t_itne_s: f64,
    t_btne_s: f64,
    fallbacks: u64,
}

fn main() {
    let mut table = Table::new(
        "Ablation: encoding tightness on trained Auto-MPG networks (δ = 0.001, W = 2)",
        &[
            "width",
            "ε̄ ITNE",
            "ε̄ ITNE+y-aware",
            "ε̄ BTNE",
            "BTNE/ITNE",
            "t ITNE",
            "t BTNE",
        ],
    );
    let mut rows = Vec::new();

    for width in [4usize, 6, 8, 16] {
        let bench = auto_mpg_net(0, width);
        let run = |encoding, y_aware| {
            let opts = CertifyOptions {
                window: 2,
                encoding,
                y_aware_distance: y_aware,
                threads: 2,
                ..Default::default()
            };
            let t = Instant::now();
            let r = certify_global(&bench.net, &bench.domain, bench.delta, &opts)
                .expect("certification runs");
            (r.max_epsilon(), t.elapsed(), r.stats.query.fallbacks)
        };
        let (itne, t_itne, fb_itne) = run(EncodingKind::Itne, false);
        let (aware, _, fb_aware) = run(EncodingKind::Itne, true);
        let (btne, t_btne, fb_btne) = run(EncodingKind::Btne, false);
        let fallbacks = fb_itne + fb_aware + fb_btne;
        if fallbacks > 0 {
            eprintln!(
                "   width {width}: {fallbacks} IBP fallbacks (itne {fb_itne}, y-aware {fb_aware}, btne {fb_btne}) — affected bounds are IBP-loose"
            );
        }

        table.row(&[
            width.to_string(),
            format!("{itne:.5}"),
            format!("{aware:.5}"),
            format!("{btne:.5}"),
            format!("{:.1}×", btne / itne),
            fmt_duration(t_itne),
            fmt_duration(t_btne),
        ]);
        rows.push(Row {
            width,
            eps_itne: itne,
            eps_itne_y_aware: aware,
            eps_btne: btne,
            btne_over_itne: btne / itne,
            t_itne_s: t_itne.as_secs_f64(),
            t_btne_s: t_btne.as_secs_f64(),
            fallbacks,
        });
    }
    table.print();
    save_json("ablation_encoding", &rows);
    println!("\nITNE keeps the distance information between copies; BTNE loses it at every\nsub-network boundary — the multiplier above is the paper's §II-D effect at scale.");
}
