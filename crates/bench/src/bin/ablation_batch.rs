//! Ablation: warm-started batched LP solving vs the cold per-objective path.
//!
//! Runs Algorithm 1 on the Table I networks twice — once with
//! `SolveOptions::warm_start` off (every directed solve pays simplex phase 1
//! from scratch) and once with the `BatchSolver` warm-start chain on — and
//! reports wall-clock, pivot counts, warm-start hit rates, and the certified
//! ε̄ of both paths. The epsilons must agree **bit for bit**: batching is a
//! pure optimization (the golden regression tests lock the same property).
//!
//! ```text
//! cargo run --release -p itne_bench --bin ablation_batch [-- --full]
//! ```
//!
//! `--full` extends the sweep to the larger FC nets and the conv net
//! (several minutes); the default quick set matches CI budgets.

use itne_bench::nets::{auto_mpg_net, digits_net, BenchNet};
use itne_bench::table::{fmt_duration, save_json, Table};
use itne_core::{certify_global, CertifyOptions, CertifyStats, GlobalReport};
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct Row {
    net: String,
    cold_s: f64,
    warm_s: f64,
    speedup: f64,
    cold_pivots: u64,
    warm_pivots: u64,
    pivots_saved: u64,
    warm_hits: u64,
    warm_misses: u64,
    fallbacks_cold: u64,
    fallbacks_warm: u64,
    eps_bits_equal: bool,
    eps: f64,
}

fn run(bench: &BenchNet, warm: bool) -> (GlobalReport, f64) {
    let mut opts = CertifyOptions {
        window: 2,
        refine: 0,
        ..Default::default()
    };
    opts.solver.warm_start = warm;
    // Small nets certify in well under a millisecond; report the best of a
    // few repetitions so the speedup column measures solver work, not timer
    // granularity and cache warmup.
    let reps = if bench.net.hidden_neurons() > 100 {
        1
    } else {
        5
    };
    let mut best = f64::INFINITY;
    let mut report = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let r = certify_global(&bench.net, &bench.domain, bench.delta, &opts).expect("certifies");
        best = best.min(t0.elapsed().as_secs_f64());
        report = Some(r);
    }
    (report.expect("at least one rep"), best)
}

fn describe(stats: &CertifyStats) -> String {
    format!(
        "{} LPs, {} pivots, {} fallbacks",
        stats.query.solves, stats.query.pivots, stats.query.fallbacks
    )
}

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let mut table = Table::new(
        "Ablation: warm-started batched LP sweeps (cold vs warm)",
        &[
            "net",
            "cold",
            "warm",
            "speedup",
            "warm hits",
            "misses",
            "pivots saved",
            "fallbacks",
            "ε̄ equal",
        ],
    );
    let mut rows = Vec::new();

    let mut benches = vec![auto_mpg_net(1, 4), auto_mpg_net(2, 6), auto_mpg_net(3, 8)];
    if full {
        benches.push(auto_mpg_net(4, 16));
        benches.push(auto_mpg_net(5, 32));
        benches.push(digits_net(6, 1));
    }

    for bench in &benches {
        let name = format!("mpg-id{} ({}n)", bench.id, bench.net.hidden_neurons());
        eprintln!("-- {name}: cold ...");
        let (cold, cold_s) = run(bench, false);
        eprintln!("   cold: {} in {cold_s:.2}s", describe(&cold.stats));
        eprintln!("-- {name}: warm ...");
        let (warm, warm_s) = run(bench, true);
        eprintln!("   warm: {} in {warm_s:.2}s", describe(&warm.stats));

        let bits =
            |r: &GlobalReport| -> Vec<u64> { r.epsilons.iter().map(|e| e.to_bits()).collect() };
        let equal = bits(&cold) == bits(&warm);
        let row = Row {
            net: name.clone(),
            cold_s,
            warm_s,
            speedup: cold_s / warm_s.max(1e-12),
            cold_pivots: cold.stats.query.pivots,
            warm_pivots: warm.stats.query.pivots,
            pivots_saved: warm.stats.query.pivots_saved,
            warm_hits: warm.stats.query.warm_hits,
            warm_misses: warm.stats.query.warm_misses,
            fallbacks_cold: cold.stats.query.fallbacks,
            fallbacks_warm: warm.stats.query.fallbacks,
            eps_bits_equal: equal,
            eps: warm.max_epsilon(),
        };
        table.row(&[
            row.net.clone(),
            fmt_duration(std::time::Duration::from_secs_f64(row.cold_s)),
            fmt_duration(std::time::Duration::from_secs_f64(row.warm_s)),
            format!("{:.2}×", row.speedup),
            row.warm_hits.to_string(),
            row.warm_misses.to_string(),
            row.pivots_saved.to_string(),
            format!("{}/{}", row.fallbacks_cold, row.fallbacks_warm),
            if row.eps_bits_equal { "yes" } else { "NO" }.to_string(),
        ]);
        rows.push(row);
        table.print();
    }
    save_json("ablation_batch", &rows);

    let diverged: Vec<&Row> = rows.iter().filter(|r| !r.eps_bits_equal).collect();
    if !diverged.is_empty() {
        for r in diverged {
            eprintln!("DIVERGED: {} — warm and cold epsilons differ", r.net);
        }
        std::process::exit(1);
    }
    let gmean: f64 = rows.iter().map(|r| r.speedup.ln()).sum::<f64>() / rows.len() as f64;
    println!("\ngeometric-mean speedup: {:.2}×", gmean.exp());
}
