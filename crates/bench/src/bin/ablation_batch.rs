//! Ablation: the batched-LP engine arms, head to head.
//!
//! Runs Algorithm 1 on the Table I networks three times —
//!
//! * **dense** — the PR 2 configuration: dense tableau engine, warm starts
//!   on, with the original `warm_start_cell_limit = 2²⁰` gate (large conv
//!   windows re-solve cold);
//! * **cold** — the LU-factorized sparse revised simplex with `warm_start`
//!   off (every directed solve pays simplex phase 1 from scratch);
//! * **warm** — the LU-factorized sparse revised simplex with the
//!   `BatchSolver` warm-start chain on (the current default);
//!
//! and reports wall-clock, pivot counts, warm-start hit rates,
//! refactorization telemetry, and the certified ε̄ of all three paths. The
//! epsilons must agree **bit for bit**: engine choice and batching are pure
//! optimizations (the golden regression tests lock the same property).
//!
//! ```text
//! cargo run --release -p itne_bench --bin ablation_batch \
//!     [-- --full | --smoke] [-- --json <path>]
//! ```
//!
//! `--full` extends the sweep to the larger FC nets and the conv net
//! (several minutes); the default quick set matches CI budgets; `--smoke`
//! runs only the smallest Table I net (the CI perf-smoke step). `--json
//! <path>` additionally writes the machine-readable per-net results
//! (wall-times, pivots, warm hits/misses, refactorizations, ε̄ bits) to an
//! explicit path so the perf trajectory is trackable across PRs.

use itne_bench::nets::{auto_mpg_net, digits_net, BenchNet};
use itne_bench::table::{fmt_duration, json_flag, save_json, save_json_at, Table};
use itne_core::{certify_global, CertifyOptions, CertifyStats, GlobalReport};
use itne_milp::Engine;
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct Row {
    net: String,
    /// Certifier worker threads (pinned to 1: the ablation isolates solver
    /// work, and the default now follows the hardware).
    threads: usize,
    /// PR 2 baseline: dense engine, warm starts gated at 2²⁰ cells.
    dense_s: f64,
    /// Sparse engine, warm starts disabled.
    cold_s: f64,
    /// Sparse engine, warm starts on (the default configuration).
    warm_s: f64,
    /// Sparse-warm over the dense PR 2 baseline (the engine win).
    speedup_vs_dense: f64,
    /// Sparse-warm over sparse-cold (the warm-start win).
    speedup_vs_cold: f64,
    dense_pivots: u64,
    cold_pivots: u64,
    warm_pivots: u64,
    pivots_saved: u64,
    dense_warm_hits: u64,
    warm_hits: u64,
    warm_misses: u64,
    fallbacks_dense: u64,
    fallbacks_cold: u64,
    fallbacks_warm: u64,
    refactorizations: u64,
    eta_len: u64,
    nnz: u64,
    /// Nanoseconds the warm arm spent refactorizing the basis.
    refactor_time_ns: u64,
    /// Nanoseconds the warm arm spent in FTRAN/BTRAN passes.
    ftran_btran_time_ns: u64,
    /// Peak LU fill (stored `L`+`U` non-zeros) in the warm arm.
    lu_fill_nnz: u64,
    /// Whether exact-rational certificate checking was enabled for this run
    /// (the `ITNE_CHECK_CERTS` environment variable / `check_certificates`).
    check_certificates: bool,
    /// Certified LP bounds validated in exact arithmetic, summed over the
    /// three arms.
    certs_checked: u64,
    /// Certificate checks that failed, summed over the three arms. Any
    /// nonzero count fails the run.
    cert_failures: u64,
    eps_bits_equal: bool,
    eps: f64,
    /// Exact bit pattern of the certified ε̄ (hex), for cross-PR tracking
    /// without float-formatting ambiguity.
    eps_bits: String,
}

#[derive(Copy, Clone)]
enum Arm {
    /// PR 2's configuration: dense tableau + the original cell-limit gate.
    Dense,
    /// Sparse engine, every solve cold.
    SparseCold,
    /// Sparse engine, warm-start chains on (the default).
    SparseWarm,
}

fn run(bench: &BenchNet, arm: Arm) -> (GlobalReport, f64) {
    let is_conv = bench.layers.starts_with("Conv");
    // Single-threaded so the timing isolates solver work — the certifier's
    // default thread count now follows the hardware, so it must be pinned.
    let mut opts = if is_conv {
        CertifyOptions {
            window: 3,
            refine: 0,
            threads: 1,
            ..Default::default()
        }
    } else {
        CertifyOptions {
            window: 2,
            refine: 0,
            threads: 1,
            ..Default::default()
        }
    };
    match arm {
        Arm::Dense => {
            opts.solver.engine = Engine::Dense;
            opts.solver.warm_start = true;
            opts.solver.warm_start_cell_limit = 1 << 20;
        }
        Arm::SparseCold => {
            opts.solver.engine = Engine::Lu;
            opts.solver.warm_start = false;
        }
        Arm::SparseWarm => {
            opts.solver.engine = Engine::Lu;
            opts.solver.warm_start = true;
        }
    }
    // Timing telemetry (refactorization and FTRAN/BTRAN nanoseconds) costs
    // two clock reads per timed region and never affects pivots or bounds.
    opts.solver.telemetry = Some(itne_core::deadline::telemetry_clock());
    // Small nets certify in well under a millisecond; report the best of a
    // few repetitions so the speedup column measures solver work, not timer
    // granularity and cache warmup.
    let reps = if bench.net.hidden_neurons() > 100 {
        1
    } else {
        5
    };
    let mut best = f64::INFINITY;
    let mut report = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let r = certify_global(&bench.net, &bench.domain, bench.delta, &opts).expect("certifies");
        best = best.min(t0.elapsed().as_secs_f64());
        report = Some(r);
    }
    (report.expect("at least one rep"), best)
}

fn describe(stats: &CertifyStats) -> String {
    format!(
        "{} LPs, {} pivots, {} refactorizations (peak eta {}, max nnz {}), {} fallbacks",
        stats.query.solves,
        stats.query.pivots,
        stats.query.refactorizations,
        stats.query.eta_len,
        stats.query.nnz,
        stats.query.fallbacks
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let full = args.iter().any(|a| a == "--full");
    let smoke = args.iter().any(|a| a == "--smoke");
    let json_path = json_flag(&args);
    let mut table = Table::new(
        "Ablation: batched LP engines (dense PR2 baseline vs sparse cold vs sparse warm)",
        &[
            "net",
            "dense",
            "cold",
            "warm",
            "vs dense",
            "vs cold",
            "warm hits",
            "misses",
            "pivots saved",
            "refac",
            "fallbacks",
            "ε̄ equal",
        ],
    );
    let mut rows = Vec::new();

    let mut benches = if smoke {
        vec![auto_mpg_net(1, 4)]
    } else {
        vec![auto_mpg_net(1, 4), auto_mpg_net(2, 6), auto_mpg_net(3, 8)]
    };
    if full {
        benches.push(auto_mpg_net(4, 16));
        benches.push(auto_mpg_net(5, 32));
        benches.push(digits_net(6, 1));
    }

    for bench in &benches {
        let kind = if bench.layers.starts_with("Conv") {
            "conv"
        } else {
            "mpg"
        };
        let name = format!("{kind}-id{} ({}n)", bench.id, bench.net.hidden_neurons());
        eprintln!("-- {name}: dense (PR2 baseline) ...");
        let (dense, dense_s) = run(bench, Arm::Dense);
        eprintln!("   dense: {} in {dense_s:.2}s", describe(&dense.stats));
        eprintln!("-- {name}: sparse cold ...");
        let (cold, cold_s) = run(bench, Arm::SparseCold);
        eprintln!("   cold: {} in {cold_s:.2}s", describe(&cold.stats));
        eprintln!("-- {name}: sparse warm ...");
        let (warm, warm_s) = run(bench, Arm::SparseWarm);
        eprintln!("   warm: {} in {warm_s:.2}s", describe(&warm.stats));

        let bits =
            |r: &GlobalReport| -> Vec<u64> { r.epsilons.iter().map(|e| e.to_bits()).collect() };
        let equal = bits(&cold) == bits(&warm) && bits(&dense) == bits(&warm);
        let row = Row {
            net: name.clone(),
            threads: 1,
            dense_s,
            cold_s,
            warm_s,
            speedup_vs_dense: dense_s / warm_s.max(1e-12),
            speedup_vs_cold: cold_s / warm_s.max(1e-12),
            dense_pivots: dense.stats.query.pivots,
            cold_pivots: cold.stats.query.pivots,
            warm_pivots: warm.stats.query.pivots,
            pivots_saved: warm.stats.query.pivots_saved,
            dense_warm_hits: dense.stats.query.warm_hits,
            warm_hits: warm.stats.query.warm_hits,
            warm_misses: warm.stats.query.warm_misses,
            fallbacks_dense: dense.stats.query.fallbacks,
            fallbacks_cold: cold.stats.query.fallbacks,
            fallbacks_warm: warm.stats.query.fallbacks,
            refactorizations: warm.stats.query.refactorizations,
            eta_len: warm.stats.query.eta_len,
            nnz: warm.stats.query.nnz,
            refactor_time_ns: warm.stats.query.refactor_time_ns,
            ftran_btran_time_ns: warm.stats.query.ftran_btran_time_ns,
            lu_fill_nnz: warm.stats.query.lu_fill_nnz,
            check_certificates: itne_core::query::default_check_certificates(),
            certs_checked: dense.stats.query.certs_checked
                + cold.stats.query.certs_checked
                + warm.stats.query.certs_checked,
            cert_failures: dense.stats.query.cert_failures
                + cold.stats.query.cert_failures
                + warm.stats.query.cert_failures,
            eps_bits_equal: equal,
            eps: warm.max_epsilon(),
            eps_bits: format!("{:#018x}", warm.max_epsilon().to_bits()),
        };
        table.row(&[
            row.net.clone(),
            fmt_duration(std::time::Duration::from_secs_f64(row.dense_s)),
            fmt_duration(std::time::Duration::from_secs_f64(row.cold_s)),
            fmt_duration(std::time::Duration::from_secs_f64(row.warm_s)),
            format!("{:.2}×", row.speedup_vs_dense),
            format!("{:.2}×", row.speedup_vs_cold),
            row.warm_hits.to_string(),
            row.warm_misses.to_string(),
            row.pivots_saved.to_string(),
            row.refactorizations.to_string(),
            format!(
                "{}/{}/{}",
                row.fallbacks_dense, row.fallbacks_cold, row.fallbacks_warm
            ),
            if row.eps_bits_equal { "yes" } else { "NO" }.to_string(),
        ]);
        rows.push(row);
        table.print();
    }
    save_json("ablation_batch", &rows);
    if let Some(path) = &json_path {
        save_json_at(path, &rows);
    }

    let diverged: Vec<&Row> = rows.iter().filter(|r| !r.eps_bits_equal).collect();
    if !diverged.is_empty() {
        for r in diverged {
            eprintln!("DIVERGED: {} — engine/warm epsilons differ", r.net);
        }
        std::process::exit(1);
    }
    let cert_failures: u64 = rows.iter().map(|r| r.cert_failures).sum();
    if cert_failures > 0 {
        eprintln!("CERT FAILURES: {cert_failures} dual certificates did not validate");
        std::process::exit(1);
    }
    let gmean = |f: fn(&Row) -> f64| -> f64 {
        (rows.iter().map(|r| f(r).ln()).sum::<f64>() / rows.len() as f64).exp()
    };
    println!(
        "\ngeometric-mean speedup: {:.2}× vs dense PR2 baseline, {:.2}× vs sparse cold",
        gmean(|r| r.speedup_vs_dense),
        gmean(|r| r.speedup_vs_cold)
    );
}
