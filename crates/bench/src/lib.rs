//! Shared helpers for the ITNE benchmark harness (table/figure regeneration
//! binaries and criterion micro-benchmarks live in this crate).

#![forbid(unsafe_code)]

pub mod nets;
pub mod table;
