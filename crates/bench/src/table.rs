//! Console table rendering and JSON result persistence for the harness
//! binaries.

use crate::nets::artifact_dir;
use serde::Serialize;
use std::fmt::Write as _;
use std::time::Duration;

/// A fixed-width console table with a title and aligned columns.
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with column headers.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (stringified cells).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Renders to a string.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.chars().count();
        }
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                width[i] = width[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |out: &mut String| {
            for (i, w) in width.iter().enumerate() {
                let _ = write!(out, "+{}", "-".repeat(w + 2));
                if i + 1 == cols {
                    let _ = writeln!(out, "+");
                }
            }
        };
        line(&mut out);
        for (i, h) in self.header.iter().enumerate() {
            let _ = write!(out, "| {:w$} ", h, w = width[i]);
        }
        let _ = writeln!(out, "|");
        line(&mut out);
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                let _ = write!(out, "| {:w$} ", c, w = width[i]);
            }
            let _ = writeln!(out, "|");
        }
        line(&mut out);
        out
    }

    /// Prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a duration like the paper's columns (`0.3s`, `4.8h`).
pub fn fmt_duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s < 1.0 {
        format!("{:.2}s", s)
    } else if s < 120.0 {
        format!("{:.1}s", s)
    } else if s < 7200.0 {
        format!("{:.1}m", s / 60.0)
    } else {
        format!("{:.1}h", s / 3600.0)
    }
}

/// Persists a serializable result under `artifacts/results/<name>.json`.
pub fn save_json<T: Serialize>(name: &str, value: &T) {
    let dir = artifact_dir().join("results");
    let _ = std::fs::create_dir_all(&dir);
    save_json_at(&dir.join(format!("{name}.json")), value);
}

/// Persists a serializable result at an explicit path (the machine-readable
/// output behind every harness binary's `--json <path>` flag, so CI and the
/// cross-PR perf trajectory can consume results without scraping tables).
pub fn save_json_at<T: Serialize>(path: &std::path::Path, value: &T) {
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match serde_json::to_string_pretty(value) {
        Ok(s) => {
            if let Err(e) = std::fs::write(path, s) {
                eprintln!("warning: could not write {}: {e}", path.display());
            } else {
                eprintln!("(results saved to {})", path.display());
            }
        }
        Err(e) => eprintln!("warning: could not serialize {}: {e}", path.display()),
    }
}

/// Parses a `--json <path>` flag from a raw argument list.
pub fn json_flag(args: &[String]) -> Option<std::path::PathBuf> {
    args.iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from)
}

/// Writes a grayscale image (`values` in `[0,1]`, row-major) as a binary PGM
/// under `artifacts/figures/`.
pub fn save_pgm(name: &str, width: usize, height: usize, values: &[f64]) {
    assert_eq!(values.len(), width * height, "image size mismatch");
    let dir = artifact_dir().join("figures");
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join(format!("{name}.pgm"));
    let mut bytes = format!("P5\n{width} {height}\n255\n").into_bytes();
    bytes.extend(
        values
            .iter()
            .map(|v| (v.clamp(0.0, 1.0) * 255.0).round() as u8),
    );
    if let Err(e) = std::fs::write(&path, bytes) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        eprintln!("(figure saved to {})", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["id", "value"]);
        t.row(&["1".into(), "short".into()]);
        t.row(&["22".into(), "much longer cell".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.lines().all(|l| l.is_empty()
            || l.starts_with('+')
            || l.starts_with('|')
            || l.starts_with("==")));
    }

    #[test]
    fn durations_format_like_paper() {
        assert_eq!(fmt_duration(Duration::from_millis(300)), "0.30s");
        assert_eq!(fmt_duration(Duration::from_secs(130 * 60)), "2.2h");
    }
}
