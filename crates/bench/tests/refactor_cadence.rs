//! Regression lock for the LU engine's refactorization cadence: on the
//! Table I smoke net the basis must be refactorized orders of magnitude
//! less often than it pivots. The eta engine rebuilds its inverse every
//! `O(m)` pivots by necessity (the eta file is its only representation);
//! the LU engine refactorizes only on warm restores and measured fill
//! growth, which is the whole point of carrying real factors.

use itne_bench::nets::auto_mpg_net;
use itne_core::{certify_global, CertifyOptions};
use itne_milp::Engine;

#[test]
fn lu_refactorizations_stay_far_below_pivots_on_the_smoke_net() {
    let bench = auto_mpg_net(1, 4);
    let mut opts = CertifyOptions {
        window: 2,
        refine: 0,
        ..Default::default()
    };
    opts.solver.engine = Engine::Lu;
    let report =
        certify_global(&bench.net, &bench.domain, bench.delta, &opts).expect("smoke net certifies");
    let q = report.stats.query;
    assert!(q.pivots > 0, "smoke net should exercise the simplex");
    assert!(
        q.refactorizations * 500 < q.pivots,
        "LU engine refactorizes too eagerly: {} refactorizations for {} pivots",
        q.refactorizations,
        q.pivots
    );
}
