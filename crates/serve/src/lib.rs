//! The resident certification engine: certification-as-a-service over the
//! ITNE certifier, for workloads that issue many near-identical queries
//! against the same network (δ-sweeps, window ablations, per-epoch
//! re-certification during certified training).
//!
//! A [`CertEngine`] holds three cache layers, each invalidated by its own
//! key:
//!
//! 1. a **model registry** keyed by the deterministic weight hash
//!    ([`itne_nn::AffineNetwork::weight_hash`]): lowered network, domain,
//!    and the δ-independent interval pre-bounds
//!    ([`itne_core::ibp_values`]), computed once at registration;
//! 2. per-session **encoding caches** inside [`ResidentState`], keyed by
//!    `(net_hash, window, refine)`: repeated δ-values over the same window
//!    re-parameterize the cached constraint skeletons in place instead of
//!    re-encoding (δ only perturbs bounds/RHS);
//! 3. a **basis store** in the same state: every directed solve's final
//!    simplex basis persists per `(encoding, objective)` across requests,
//!    extending within-sweep warm starts to cross-query warm starts.
//!
//! Re-registering an id with updated weights produces a new hash whose
//! entry links to its predecessor; the first query against the new weights
//! clones the predecessor's session state, so **delta re-certification**
//! after a fine-tuning step rebuilds only bounds/RHS and warm-starts every
//! sweep from the previous model's bases.
//!
//! Every cache layer is a pure optimization: cached-path results are
//! bit-identical to a cold [`itne_core::certify_global`] run (asserted by
//! this crate's tests, serially and under concurrency). Queries run on the
//! certifier's deterministic work-stealing pool; a bounded in-flight gate
//! keeps concurrent clients from oversubscribing it.

#![forbid(unsafe_code)]

use itne_core::query::QueryStats;
use itne_core::{
    certify_global_resident, ibp_values, CertifyError, CertifyOptions, CertifyStats, Interval,
    ResidentState, ValuePreBounds,
};
use itne_nn::{AffineNetwork, Network};
use std::collections::BTreeMap;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Errors returned by [`CertEngine`] operations.
#[derive(Debug)]
pub enum ServeError {
    /// The query named a net id that was never registered.
    UnknownNet(String),
    /// The underlying certifier rejected the inputs.
    Certify(CertifyError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::UnknownNet(id) => write!(f, "unknown net id {id:?}"),
            ServeError::Certify(e) => write!(f, "certification failed: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<CertifyError> for ServeError {
    fn from(e: CertifyError) -> Self {
        ServeError::Certify(e)
    }
}

/// One certification query against a registered net.
#[derive(Copy, Clone, Debug)]
pub struct QueryRequest {
    /// Input perturbation bound δ.
    pub delta: f64,
    /// Decomposition window `W`.
    pub window: usize,
    /// Selectively-refined neurons per sub-problem.
    pub refine: usize,
    /// Validate every certified LP bound against its dual certificate in
    /// exact rational arithmetic.
    pub check_certs: bool,
}

impl QueryRequest {
    /// A query at the paper's default configuration (`W = 2`, no
    /// refinement, checking off).
    pub fn new(delta: f64) -> Self {
        QueryRequest {
            delta,
            window: 2,
            refine: 0,
            check_certs: false,
        }
    }
}

/// The result of one engine query.
#[derive(Clone, Debug)]
pub struct QueryResponse {
    /// Weight hash of the net that answered (registry key).
    pub net_hash: u64,
    /// Certified `ε̄` per network output.
    pub epsilons: Vec<f64>,
    /// The run's work counters, including the cache telemetry
    /// (`encoding_cache_hits/misses`, `cross_query_warm_hits`).
    pub stats: CertifyStats,
    /// Whether this query's session was seeded by cloning a predecessor
    /// net's session (the delta re-certification path).
    pub delta_seeded: bool,
}

/// Engine-lifetime counters, aggregated over every query.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Distinct weight hashes registered.
    pub registered_nets: u64,
    /// Re-registrations of an existing id with new weights (each links a
    /// predecessor for the delta path).
    pub delta_registrations: u64,
    /// Queries answered.
    pub queries: u64,
    /// Sessions seeded by cloning a predecessor net's session state.
    pub delta_seeded_sessions: u64,
    /// LP/MILP solves issued.
    pub solves: u64,
    /// Total simplex pivots.
    pub pivots: u64,
    /// Queries that fell back to the sound IBP interval.
    pub fallbacks: u64,
    /// Warm-started solves (within-sweep or cross-query).
    pub warm_hits: u64,
    /// Rejected warm starts that re-ran cold.
    pub warm_misses: u64,
    /// Resident encodings reused in place (bounds/RHS re-parameterization).
    pub encoding_cache_hits: u64,
    /// Resident encodings rebuilt from scratch.
    pub encoding_cache_misses: u64,
    /// Warm starts seeded from a basis stored by a previous query.
    pub cross_query_warm_hits: u64,
    /// Bounds validated in exact rational arithmetic.
    pub certs_checked: u64,
    /// Nanoseconds spent refactorizing bases (solver telemetry clock; never
    /// feeds certified bounds).
    pub refactor_time_ns: u64,
    /// Nanoseconds spent in FTRAN/BTRAN passes (telemetry clock).
    pub ftran_btran_time_ns: u64,
    /// Certificate validations that failed (each fell back soundly).
    pub cert_failures: u64,
}

impl ServeStats {
    fn absorb_query(&mut self, q: &QueryStats) {
        self.queries = self.queries.saturating_add(1);
        self.solves = self.solves.saturating_add(q.solves);
        self.pivots = self.pivots.saturating_add(q.pivots);
        self.fallbacks = self.fallbacks.saturating_add(q.fallbacks);
        self.warm_hits = self.warm_hits.saturating_add(q.warm_hits);
        self.warm_misses = self.warm_misses.saturating_add(q.warm_misses);
        self.encoding_cache_hits = self
            .encoding_cache_hits
            .saturating_add(q.encoding_cache_hits);
        self.encoding_cache_misses = self
            .encoding_cache_misses
            .saturating_add(q.encoding_cache_misses);
        self.cross_query_warm_hits = self
            .cross_query_warm_hits
            .saturating_add(q.cross_query_warm_hits);
        self.certs_checked = self.certs_checked.saturating_add(q.certs_checked);
        self.refactor_time_ns = self.refactor_time_ns.saturating_add(q.refactor_time_ns);
        self.ftran_btran_time_ns = self
            .ftran_btran_time_ns
            .saturating_add(q.ftran_btran_time_ns);
        self.cert_failures = self.cert_failures.saturating_add(q.cert_failures);
    }
}

/// One registered network: everything the registry computes once per weight
/// hash (cache layer 1).
struct NetEntry {
    aff: AffineNetwork,
    domain: Vec<(f64, f64)>,
    hash: u64,
    /// δ-independent interval pre-bounds over `domain`.
    pre: ValuePreBounds,
    /// The hash this id previously resolved to, when re-registered with
    /// updated weights — the delta re-certification link.
    predecessor: Option<u64>,
}

#[derive(Default)]
struct Registry {
    by_id: BTreeMap<String, u64>,
    by_hash: BTreeMap<u64, Arc<NetEntry>>,
}

/// Sessions are keyed by everything that shapes cached encodings:
/// `(net_hash, window, refine)`. δ and certificate checking deliberately
/// stay out of the key — they never change the constraint skeleton.
type SessionKey = (u64, usize, usize);

/// Bounded in-flight gate: at most `cap` queries execute concurrently; the
/// rest block (in arrival order of lock acquisition) until a slot frees.
struct Gate {
    n: Mutex<usize>,
    cv: Condvar,
    cap: usize,
}

struct GateGuard<'a>(&'a Gate);

impl Gate {
    fn acquire(&self) -> GateGuard<'_> {
        let mut n = lock(&self.n);
        while *n >= self.cap {
            n = self.cv.wait(n).unwrap_or_else(|e| e.into_inner());
        }
        *n += 1;
        GateGuard(self)
    }
}

impl Drop for GateGuard<'_> {
    fn drop(&mut self) {
        *lock(&self.0.n) -= 1;
        self.0.cv.notify_one();
    }
}

/// Poison-tolerant lock: the engine's shared state is telemetry and caches,
/// both safe to keep serving after a panicking client thread.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// The resident certification engine. See the crate docs for the cache
/// architecture; all methods take `&self`, so one engine can be shared
/// across client threads (`&CertEngine` is `Send + Sync`).
pub struct CertEngine {
    threads: usize,
    registry: Mutex<Registry>,
    sessions: Mutex<BTreeMap<SessionKey, Arc<Mutex<ResidentState>>>>,
    gate: Gate,
    stats: Mutex<ServeStats>,
}

impl CertEngine {
    /// An engine whose queries run on `threads` certifier workers, with at
    /// most `max_in_flight` queries executing concurrently (further callers
    /// block). Both are clamped to at least 1.
    pub fn new(threads: usize, max_in_flight: usize) -> Self {
        CertEngine {
            threads: threads.max(1),
            registry: Mutex::new(Registry::default()),
            sessions: Mutex::new(BTreeMap::new()),
            gate: Gate {
                n: Mutex::new(0),
                cv: Condvar::new(),
                cap: max_in_flight.max(1),
            },
            stats: Mutex::new(ServeStats::default()),
        }
    }

    /// Registers (or re-registers) `net` under `id` and returns its weight
    /// hash. Lowering, hashing, and the δ-independent interval pre-bounds
    /// happen here, once per distinct weight hash. Re-registering an id
    /// with changed weights links the new entry to its predecessor so the
    /// first query against it can clone the old session (delta path);
    /// re-registering identical weights is a no-op.
    ///
    /// # Errors
    ///
    /// [`ServeError::Certify`] when the network cannot be lowered or the
    /// domain does not match its input dimension.
    pub fn register(
        &self,
        id: &str,
        net: &Network,
        domain: &[(f64, f64)],
    ) -> Result<u64, ServeError> {
        let aff = AffineNetwork::from_network(net).map_err(CertifyError::Lower)?;
        self.register_affine(id, aff, domain)
    }

    /// [`CertEngine::register`] for an already-lowered network.
    ///
    /// # Errors
    ///
    /// See [`CertEngine::register`].
    pub fn register_affine(
        &self,
        id: &str,
        aff: AffineNetwork,
        domain: &[(f64, f64)],
    ) -> Result<u64, ServeError> {
        if domain.len() != aff.input_dim {
            return Err(CertifyError::InvalidInput(format!(
                "domain has {} dimensions, network input is {}",
                domain.len(),
                aff.input_dim
            ))
            .into());
        }
        if domain
            .iter()
            .any(|&(lo, hi)| !lo.is_finite() || !hi.is_finite() || lo > hi)
        {
            return Err(
                CertifyError::InvalidInput("domain box must be finite and ordered".into()).into(),
            );
        }
        let hash = aff.weight_hash();
        let dom_iv: Vec<Interval> = domain
            .iter()
            .map(|&(lo, hi)| Interval::new(lo, hi))
            .collect();
        let mut reg = lock(&self.registry);
        let predecessor = match reg.by_id.get(id) {
            Some(&old) if old == hash => return Ok(hash), // identical weights: no-op
            Some(&old) => Some(old),
            None => None,
        };
        if let std::collections::btree_map::Entry::Vacant(slot) = reg.by_hash.entry(hash) {
            let pre = ibp_values(&aff, &dom_iv);
            slot.insert(Arc::new(NetEntry {
                aff,
                domain: domain.to_vec(),
                hash,
                pre,
                predecessor,
            }));
            lock(&self.stats).registered_nets += 1;
        }
        reg.by_id.insert(id.to_string(), hash);
        if predecessor.is_some() {
            lock(&self.stats).delta_registrations += 1;
        }
        Ok(hash)
    }

    /// The weight hash `id` currently resolves to.
    pub fn net_hash(&self, id: &str) -> Option<u64> {
        lock(&self.registry).by_id.get(id).copied()
    }

    /// Certifies `(δ, ε̄)`-global robustness of the net registered under
    /// `net_id`, reusing every applicable cache layer. Queries against the
    /// same `(net, window, refine)` session serialize on its state;
    /// different nets (and different windows of one net) run concurrently
    /// up to the engine's in-flight bound. Results are bit-identical to a
    /// cold [`itne_core::certify_global`] run with the same options.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownNet`] for an unregistered id;
    /// [`ServeError::Certify`] for invalid query parameters.
    pub fn certify(&self, net_id: &str, q: &QueryRequest) -> Result<QueryResponse, ServeError> {
        let _slot = self.gate.acquire();
        let entry = {
            let reg = lock(&self.registry);
            let hash = *reg
                .by_id
                .get(net_id)
                .ok_or_else(|| ServeError::UnknownNet(net_id.to_string()))?;
            Arc::clone(reg.by_hash.get(&hash).expect("registry id without entry"))
        };
        let key: SessionKey = (entry.hash, q.window, q.refine);
        let mut delta_seeded = false;
        let session = {
            let mut sessions = lock(&self.sessions);
            if let Some(s) = sessions.get(&key) {
                Arc::clone(s)
            } else {
                // First query for this (net, window, refine): seed from the
                // predecessor net's same-shaped session when one exists —
                // its encodings re-parameterize and its bases warm-start
                // against the updated weights (delta re-certification).
                let seed = entry
                    .predecessor
                    .and_then(|p| sessions.get(&(p, q.window, q.refine)))
                    .map(|s| lock(s).clone());
                delta_seeded = seed.is_some();
                let s = Arc::new(Mutex::new(seed.unwrap_or_default()));
                sessions.insert(key, Arc::clone(&s));
                s
            }
        };
        let mut opts = CertifyOptions {
            window: q.window,
            refine: q.refine,
            threads: self.threads,
            check_certificates: q.check_certs,
            ..Default::default()
        };
        // Timing telemetry (refactorization / FTRAN-BTRAN nanoseconds in the
        // stats): audit-only clock reads inside the solver that never feed
        // certified bounds.
        opts.solver.telemetry = Some(itne_core::deadline::telemetry_clock());
        let report = {
            let mut state = lock(&session);
            certify_global_resident(
                &entry.aff,
                &entry.domain,
                q.delta,
                &opts,
                Some(&entry.pre),
                &mut state,
            )?
        };
        {
            let mut stats = lock(&self.stats);
            stats.absorb_query(&report.stats.query);
            if delta_seeded {
                stats.delta_seeded_sessions += 1;
            }
        }
        Ok(QueryResponse {
            net_hash: entry.hash,
            epsilons: report.epsilons,
            stats: report.stats,
            delta_seeded,
        })
    }

    /// A snapshot of the engine-lifetime counters.
    pub fn stats(&self) -> ServeStats {
        *lock(&self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use itne_core::certify_global_affine;
    use itne_nn::{AffineLayer, SparseRow};

    /// A deterministic dense ReLU net whose LPs take real pivots.
    fn dense_net(seed: u64, inputs: usize, hidden: usize, outputs: usize) -> AffineNetwork {
        let mut s = seed | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            ((s >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        };
        let mut layer = |ins: usize, width: usize, relu: bool| AffineLayer {
            rows: (0..width)
                .map(|_| SparseRow {
                    terms: (0..ins).map(|k| (k, next())).collect(),
                    bias: 0.25 * next(),
                })
                .collect(),
            relu,
        };
        AffineNetwork {
            input_dim: inputs,
            layers: vec![
                layer(inputs, hidden, true),
                layer(hidden, hidden, true),
                layer(hidden, outputs, false),
            ],
        }
    }

    fn perturbed(net: &AffineNetwork, magnitude: f64) -> AffineNetwork {
        let mut out = net.clone();
        let mut sign = 1.0;
        for l in &mut out.layers {
            for r in &mut l.rows {
                for t in &mut r.terms {
                    t.1 += sign * magnitude;
                    sign = -sign;
                }
                r.bias += sign * magnitude;
            }
        }
        out
    }

    fn cold_opts(q: &QueryRequest, threads: usize) -> CertifyOptions {
        CertifyOptions {
            window: q.window,
            refine: q.refine,
            threads,
            check_certificates: q.check_certs,
            ..Default::default()
        }
    }

    fn bits(eps: &[f64]) -> Vec<u64> {
        eps.iter().map(|e| e.to_bits()).collect()
    }

    #[test]
    fn unknown_net_and_bad_domain_are_rejected() {
        let engine = CertEngine::new(1, 1);
        assert!(matches!(
            engine.certify("nope", &QueryRequest::new(0.01)),
            Err(ServeError::UnknownNet(_))
        ));
        let net = dense_net(7, 3, 4, 1);
        assert!(engine
            .register_affine("bad", net.clone(), &[(-1.0, 1.0); 2])
            .is_err());
        assert!(engine
            .register_affine("bad", net, &[(1.0, -1.0), (0.0, 1.0), (0.0, 1.0)])
            .is_err());
    }

    #[test]
    fn reregistering_identical_weights_is_a_noop() {
        let engine = CertEngine::new(1, 1);
        let net = dense_net(11, 3, 4, 1);
        let dom = [(-1.0, 1.0); 3];
        let h1 = engine.register_affine("m", net.clone(), &dom).unwrap();
        let h2 = engine.register_affine("m", net, &dom).unwrap();
        assert_eq!(h1, h2);
        let s = engine.stats();
        assert_eq!(s.registered_nets, 1);
        assert_eq!(s.delta_registrations, 0);
    }

    /// The CI smoke workload: 8 concurrent queries across 2 registered
    /// nets, golden against the cold path, `cert_failures == 0` with
    /// certificate checking forced on.
    #[test]
    fn serve_smoke_concurrent_golden() {
        let net_a = dense_net(0xA, 4, 6, 2);
        let net_b = dense_net(0xB, 3, 5, 1);
        let dom_a = [(-1.0, 1.0); 4];
        let dom_b = [(0.0, 1.0); 3];
        let engine = CertEngine::new(1, 4);
        engine.register_affine("a", net_a.clone(), &dom_a).unwrap();
        engine.register_affine("b", net_b.clone(), &dom_b).unwrap();

        let queries: Vec<(&str, QueryRequest)> = (0..8)
            .map(|i| {
                let q = QueryRequest {
                    delta: 0.001 * (1 + i % 3) as f64,
                    window: if i % 4 == 3 { 1 } else { 2 },
                    refine: 0,
                    check_certs: true,
                };
                (if i % 2 == 0 { "a" } else { "b" }, q)
            })
            .collect();
        // Golden bits from the cold one-shot path.
        let golden: Vec<Vec<u64>> = queries
            .iter()
            .map(|(id, q)| {
                let (net, dom): (&AffineNetwork, &[(f64, f64)]) = if *id == "a" {
                    (&net_a, &dom_a)
                } else {
                    (&net_b, &dom_b)
                };
                let r = certify_global_affine(net, dom, q.delta, &cold_opts(q, 1)).unwrap();
                bits(&r.epsilons)
            })
            .collect();

        std::thread::scope(|scope| {
            let handles: Vec<_> = queries
                .iter()
                .map(|(id, q)| scope.spawn(|| engine.certify(id, q).unwrap()))
                .collect();
            for (h, want) in handles.into_iter().zip(&golden) {
                let resp = h.join().unwrap();
                assert_eq!(&bits(&resp.epsilons), want, "concurrent bits diverged");
                assert_eq!(resp.stats.query.cert_failures, 0);
            }
        });
        let s = engine.stats();
        assert_eq!(s.queries, 8);
        assert_eq!(s.cert_failures, 0);
        assert!(s.certs_checked > 0);
        // Repeated (net, window) pairs exist in the workload, so some query
        // must have hit the encoding cache.
        assert!(s.encoding_cache_hits > 0, "{s:?}");
    }

    #[test]
    fn delta_registration_seeds_the_new_session() {
        let net = dense_net(0xD317A, 4, 6, 2);
        let dom = [(-1.0, 1.0); 4];
        let engine = CertEngine::new(1, 2);
        engine.register_affine("m", net.clone(), &dom).unwrap();
        let q = QueryRequest::new(0.001);
        engine.certify("m", &q).unwrap();

        let tuned = perturbed(&net, 1e-4);
        let h2 = engine.register_affine("m", tuned.clone(), &dom).unwrap();
        assert_ne!(engine.stats().delta_registrations, 0);
        let resp = engine.certify("m", &q).unwrap();
        assert_eq!(resp.net_hash, h2);
        assert!(
            resp.delta_seeded,
            "delta path did not clone the old session"
        );
        assert!(resp.stats.query.cross_query_warm_hits > 0);
        // Bits still golden against the cold path on the tuned net.
        let cold = certify_global_affine(&tuned, &dom, q.delta, &cold_opts(&q, 1)).unwrap();
        assert_eq!(bits(&resp.epsilons), bits(&cold.epsilons));
        assert!(
            resp.stats.query.pivots < cold.stats.query.pivots,
            "delta query did not save pivots: {} vs {}",
            resp.stats.query.pivots,
            cold.stats.query.pivots
        );
    }

    proptest::proptest! {
        #![proptest_config(proptest::test_runner::Config::with_cases(6))]
        /// Satellite: cache-hit certification — registry + encoding + basis
        /// reuse, including the delta path after a weight perturbation and
        /// hash change — reproduces the cold-path ε̄ bits byte-for-byte,
        /// serially and at 4 threads.
        #[test]
        fn cached_paths_reproduce_cold_bits(
            seed in 1u64..u64::MAX,
            delta_a in 1.0e-4f64..5.0e-3,
            delta_b in 1.0e-4f64..5.0e-3,
            nudge in 1.0e-5f64..1.0e-3,
        ) {
            let net = dense_net(seed, 4, 5, 2);
            let dom = [(-1.0, 1.0); 4];
            let tuned = perturbed(&net, nudge);
            for threads in [1usize, 4] {
                let engine = CertEngine::new(threads, 2);
                engine.register_affine("m", net.clone(), &dom).unwrap();
                // δa cold-fills the caches, δb re-parameterizes, δa again is
                // a full cache hit; then the delta path on the tuned net.
                for d in [delta_a, delta_b, delta_a] {
                    let q = QueryRequest { check_certs: true, ..QueryRequest::new(d) };
                    let resp = engine.certify("m", &q).unwrap();
                    let cold =
                        certify_global_affine(&net, &dom, d, &cold_opts(&q, threads)).unwrap();
                    proptest::prop_assert_eq!(bits(&resp.epsilons), bits(&cold.epsilons));
                    proptest::prop_assert_eq!(resp.stats.query.cert_failures, 0);
                }
                engine.register_affine("m", tuned.clone(), &dom).unwrap();
                let q = QueryRequest { check_certs: true, ..QueryRequest::new(delta_b) };
                let resp = engine.certify("m", &q).unwrap();
                let cold =
                    certify_global_affine(&tuned, &dom, delta_b, &cold_opts(&q, threads)).unwrap();
                proptest::prop_assert_eq!(bits(&resp.epsilons), bits(&cold.epsilons));
                proptest::prop_assert_eq!(resp.stats.query.cert_failures, 0);
                proptest::prop_assert!(resp.delta_seeded);
                let s = engine.stats();
                proptest::prop_assert!(s.encoding_cache_hits > 0);
                proptest::prop_assert!(s.cross_query_warm_hits > 0);
            }
        }
    }
}
