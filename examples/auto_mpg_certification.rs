//! Certify a fuel-economy regression network (the paper's Auto MPG
//! scenario, Table I rows 1-5).
//!
//! ```text
//! cargo run --release --example auto_mpg_certification
//! ```
//!
//! Trains a 2-hidden-layer network on the synthetic Auto-MPG-like dataset,
//! then brackets its true global robustness three ways:
//!
//! * `ε̲` — dataset-wise PGD under-approximation (never exceeds the truth),
//! * `ε`  — exact MILP (tractable at this size),
//! * `ε̄` — Algorithm 1's certified over-approximation (sound upper bound).

use itne::attack::{dataset_under_approximation, PgdOptions};
use itne::cert::{certify_global, exact_global, CertifyOptions};
use itne::data::auto_mpg;
use itne::nn::train::{train, Adam, Loss, TrainConfig};
use itne::nn::{initialize, NetworkBuilder};
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Train: 7 features → 8 → 8 → 1 (16 hidden neurons, DNN-3 scale). ---
    let data = auto_mpg(400, 17);
    let mut net = NetworkBuilder::input(7)
        .dense_zeros(8, true)?
        .dense_zeros(8, true)?
        .dense_zeros(1, false)?
        .build();
    initialize(&mut net, 42);
    let mut opt = Adam::new(4e-3);
    let report = train(
        &mut net,
        &data,
        &mut opt,
        &TrainConfig {
            epochs: 120,
            batch_size: 32,
            loss: Loss::Mse,
            seed: 3,
            verbose: false,
        },
    );
    println!(
        "trained 7-8-8-1 network, final MSE {:.5}",
        report.final_loss()
    );

    let domain: Vec<(f64, f64)> = vec![(0.0, 1.0); 7];
    let delta = 0.001; // the paper's δ for Auto MPG

    // --- Under-approximation: PGD around every training sample. ---
    let under = dataset_under_approximation(
        &net,
        &data.inputs,
        delta,
        Some(&domain),
        &PgdOptions::default(),
    );
    println!("PGD under-approximation:   ε̲ = {:.5}", under.epsilon(0));

    // --- Exact MILP (Table I's t_M column). ---
    let exact = exact_global(
        &net,
        &domain,
        delta,
        itne::cert::deadline::solver_with_budget(Duration::from_secs(300)),
    )?;
    println!(
        "Exact MILP:                ε  = {:.5}   ({:?})",
        exact.epsilon(0),
        exact.stats.wall
    );

    // --- Algorithm 1, the paper's Auto-MPG configuration: W = 2, half the
    //     neurons refined. ---
    let opts = CertifyOptions {
        window: 2,
        refine: 8,
        threads: 2,
        ..Default::default()
    };
    let ours = certify_global(&net, &domain, delta, &opts)?;
    println!(
        "Algorithm 1 (W=2, r=8):    ε̄ = {:.5}   ({:?}, {} LPs)",
        ours.epsilon(0),
        ours.stats.wall,
        ours.stats.query.solves
    );

    println!(
        "\nsandwich: {:.5} ≤ {:.5} ≤ {:.5}  (over-approx {:.2}×, paper band 1.1-1.4×)",
        under.epsilon(0),
        exact.epsilon(0),
        ours.epsilon(0),
        ours.epsilon(0) / exact.epsilon(0)
    );
    assert!(under.epsilon(0) <= exact.epsilon(0) + 1e-7);
    assert!(exact.epsilon(0) <= ours.epsilon(0) + 1e-7);
    Ok(())
}
