//! The closed-loop ACC safety-verification case study (paper §III-B),
//! compact edition.
//!
//! ```text
//! cargo run --release --example acc_safety_verification
//! ```
//!
//! 1. Train a camera→distance perception DNN on rendered scenes.
//! 2. Bound its model error `Δd₁` on the dataset.
//! 3. Certify its global robustness `Δd₂ ≤ ε̄` at δ = 2/255 over the
//!    dataset-profiled input domain (Fig. 5 (c)/(d)).
//! 4. Compute the largest estimation error `β` the control loop tolerates
//!    (robust invariant set inside the safe region).
//! 5. Verdict: safe iff `Δd₁ + ε̄ ≤ β` — then stress-test in simulation with
//!    FGSM perturbations at increasing strengths.
//!
//! The full-scale version (paper parameters) is
//! `cargo run --release -p itne-bench --bin case_study`.

use itne::cert::{certify_global, CertifyOptions};
use itne::control::{
    max_tolerable_estimation_error, simulate, PerceptionConfig, PerceptionModel, SafeSet, SimConfig,
};
use itne::data::CameraSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Smaller-than-default camera and model keep this example quick (~1 min);
    // the bench binary runs the full configuration.
    let spec = CameraSpec {
        height: 8,
        width: 16,
        focal: 2.4,
        ..CameraSpec::default()
    };
    let cfg = PerceptionConfig {
        spec,
        conv_channels: (3, 4),
        fc_width: 12,
        train_samples: 900,
        epochs: 50,
        ..Default::default()
    };
    let (model, data, _) = PerceptionModel::train_new(&cfg);
    let dd1 = model.model_error(&data);
    println!(
        "perception net: {} hidden neurons, Δd₁ = {dd1:.4}",
        model.net.hidden_neurons()
    );

    let delta = 2.0 / 255.0;
    let domain = model.input_domain(&data, delta);
    let opts = CertifyOptions {
        window: 2,
        refine: 4,
        threads: 2,
        ..Default::default()
    };
    let report = certify_global(&model.net, &domain, delta, &opts)?;
    let dd2 = report.epsilon(0);
    println!(
        "certified global robustness at δ=2/255: Δd₂ ≤ ε̄ = {dd2:.4} ({:?})",
        report.stats.wall
    );

    let safe = SafeSet::default();
    let beta = max_tolerable_estimation_error(&safe, 1e-4);
    let dd = dd1 + dd2;
    println!("control tolerates |Δd| ≤ β = {beta:.4}; certified |Δd| ≤ {dd:.4}");
    if dd <= beta {
        println!("VERDICT: closed loop formally SAFE under δ = 2/255 perturbation.\n");
    } else {
        println!("VERDICT: cannot certify safety at this δ (bound exceeds tolerance).\n");
    }

    // Empirical stress test, as in the paper's Webots runs.
    for (label, d) in [
        ("no attack", 0.0),
        ("δ=2/255", delta),
        ("δ=10/255", 10.0 / 255.0),
    ] {
        let r = simulate(
            &model,
            beta,
            &safe,
            &SimConfig {
                episodes: 6,
                steps: 200,
                delta: d,
                seed: 11,
            },
        );
        println!(
            "sim {label:>9}: max|Δd| = {:.4}, bound exceedances {}/{} steps, unsafe episodes {}/{}",
            r.max_abs_dd, r.exceed_steps, r.total_steps, r.unsafe_episodes, r.episodes
        );
    }
    Ok(())
}
