//! Certify a convolutional digit classifier (the paper's MNIST scenario,
//! Table I rows 6-8, at the scaled-down image size).
//!
//! ```text
//! cargo run --release --example digits_certification
//! ```
//!
//! At this size exact certification is intractable (the paper's point), so
//! the bracket is PGD (below) vs Algorithm 1 (above) on two outputs, exactly
//! like the MNIST rows of Table I.

use itne::attack::{dataset_under_approximation, PgdOptions};
use itne::cert::{certify_global, CertifyOptions};
use itne::data::digits;
use itne::nn::train::{accuracy, train, Adam, Loss, TrainConfig};
use itne::nn::{initialize, NetworkBuilder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const SIZE: usize = 14;
    // --- Train: conv(4, 3×3, stride 2) → FC 32 → 10 logits. ---
    let data = digits(800, SIZE, 23);
    let mut net = NetworkBuilder::input_image(1, SIZE, SIZE)
        .conv2d(4, 3, 2, 1, true)?
        .flatten()?
        .dense_zeros(32, true)?
        .dense_zeros(10, false)?
        .build();
    initialize(&mut net, 7);
    let mut opt = Adam::new(2e-3);
    train(
        &mut net,
        &data,
        &mut opt,
        &TrainConfig {
            epochs: 25,
            batch_size: 32,
            loss: Loss::SoftmaxCrossEntropy,
            seed: 9,
            verbose: false,
        },
    );
    println!(
        "trained conv digit net: {} hidden neurons, accuracy {:.1}%",
        net.hidden_neurons(),
        100.0 * accuracy(&net, &data)
    );

    let domain: Vec<(f64, f64)> = vec![(0.0, 1.0); SIZE * SIZE];
    let delta = 2.0 / 255.0; // the paper's δ for MNIST

    // --- Algorithm 1. The paper's MNIST setting is W = 3 with 30 refined
    //     neurons per sub-problem under Gurobi; with the from-scratch B&B a
    //     lighter configuration keeps this example interactive (see the
    //     scaling note in EXPERIMENTS.md). ---
    let opts = CertifyOptions {
        window: 2,
        refine: 4,
        threads: 2,
        ..Default::default()
    };
    let ours = certify_global(&net, &domain, delta, &opts)?;

    // --- PGD under-approximation on a dataset slice (2 outputs as in the
    //     paper's table). ---
    let slice: Vec<Vec<f64>> = data.inputs.iter().take(120).cloned().collect();
    let under = dataset_under_approximation(
        &net,
        &slice,
        delta,
        Some(&domain),
        &PgdOptions {
            steps: 15,
            restarts: 2,
            ..Default::default()
        },
    );

    println!("\noutput |     ε̲ (PGD) |  ε̄ (ours) | ratio");
    for j in [0usize, 1] {
        println!(
            "  {j}    |    {:.4}   |   {:.4}  | {:.2}×",
            under.epsilon(j),
            ours.epsilon(j),
            ours.epsilon(j) / under.epsilon(j).max(1e-12)
        );
        assert!(
            under.epsilon(j) <= ours.epsilon(j) + 1e-7,
            "sandwich violated"
        );
    }
    println!(
        "\ncertification: {:?}, {} LPs, {} MILP nodes (paper: <3× gap for >5k neurons)",
        ours.stats.wall, ours.stats.query.solves, ours.stats.query.nodes
    );
    Ok(())
}
