//! Quickstart: certify the paper's Fig. 1 illustrating network.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds the 2-2-1 ReLU network of the paper's running example, certifies
//! its (δ, ε)-global robustness with Algorithm 1 (ITNE + ND + LPR), and
//! compares against the exact MILP baseline and interval propagation.

use itne::cert::{certify_global, exact_global, CertifyOptions};
use itne::milp::SolveOptions;
use itne::nn::NetworkBuilder;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The network of Fig. 1: zero biases, ReLU everywhere.
    let net = NetworkBuilder::input(2)
        .dense(&[&[1.0, 0.5], &[-0.5, 1.0]], &[0.0, 0.0], true)?
        .dense(&[&[1.0, -1.0]], &[0.0], true)?
        .build();

    let domain = [(-1.0, 1.0), (-1.0, 1.0)]; // X = [-1, 1]²
    let delta = 0.1;

    // Algorithm 1: interleaving twin-network encoding + decomposition + LPR.
    let ours = certify_global(&net, &domain, delta, &CertifyOptions::default())?;
    println!(
        "Algorithm 1 (ITNE+ND+LPR):  ε̄ = {:.4}   ({} LPs, {:?})",
        ours.epsilon(0),
        ours.stats.query.solves,
        ours.stats.wall
    );

    // Exact global robustness via the Eq. 1 MILP (tractable on 3 neurons).
    let exact = exact_global(&net, &domain, delta, SolveOptions::default())?;
    println!(
        "Exact MILP (Eq. 1):         ε  = {:.4}   ({} simplex pivots)",
        exact.epsilon(0),
        exact.stats.query.pivots
    );

    println!(
        "Over-approximation factor:  {:.2}×  (paper's §II-D band: 1.25-1.5×)",
        ours.epsilon(0) / exact.epsilon(0)
    );
    assert!(
        ours.epsilon(0) >= exact.epsilon(0) - 1e-9,
        "soundness violated?!"
    );
    Ok(())
}
